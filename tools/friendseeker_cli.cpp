// friendseeker — command-line driver for the whole toolkit.
//
//   friendseeker generate  --preset gowalla --out DIR [--users N ...]
//   friendseeker stats     CHECKINS EDGES
//   friendseeker convert   CHECKINS EDGES --out STORE.fsst
//                          [--sigma S --tau D] [--permissive]
//                          [--min-checkins N --max-users N]
//   friendseeker attack    CHECKINS EDGES | --store STORE.fsst
//                          [--sigma S --tau D --dim D --k K]
//                          [--shards N]
//                          [--blocking on|off|auto --block-hops H
//                           --block-slot-tolerance T]
//                          [--permissive] [--checkpoint-dir DIR [--resume]]
//                          [--deadline-sec S --max-memory-mb M
//                           --max-iterations N]
//                          [--metrics-out M.json --trace-out T.json
//                           --metrics-interval-sec S]
//   friendseeker obfuscate CHECKINS EDGES --mechanism M --ratio R --out DIR
//   friendseeker serve     CHECKINS [EDGES] --source replay|tail
//                          [--listen HOST:PORT [--max-conns N
//                           --idle-timeout-ms MS]]
//                          [--journal-dir DIR --snapshot-every N]
//                          [--tick-ms MS --staleness-budget-ms MS]
//                          [--events-per-tick N --ring-capacity N
//                           --backpressure block|shed]
//                          [--max-ticks N --lateness-budget-sec S]
//                          [--finalize [--finalize-every N]]
//                          [--expect-digest HEX]
//   friendseeker --list-failpoints
//
// Mechanisms: hide | blur-in | blur-cross | friendguard.
//
// `attack` installs SIGINT/SIGTERM handlers: an interrupted run stops at
// the next cooperative cancellation point, keeps its last checkpoint, and
// exits with status 130. A run truncated by --deadline-sec or
// --max-memory-mb degrades gracefully (last-good graph, degradation report
// on stderr) and exits 0.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>

#include "block/candidate_gen.h"
#include "data/defense.h"
#include "data/loader.h"
#include "data/obfuscation.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "eval/digest.h"
#include "eval/harness.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "store/convert.h"
#include "store/store.h"
#include "stream/daemon.h"
#include "stream/source.h"
#include "util/args.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/runtime.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace fs;

int usage() {
  std::fprintf(
      stderr,
      "usage: friendseeker <command> [options]\n\n"
      "commands:\n"
      "  generate   synthesize an MSN world and write SNAP-format files\n"
      "  stats      dataset statistics and co-presence census\n"
      "  convert    SNAP files -> checksummed columnar store (.fsst)\n"
      "  attack     run FriendSeeker (and baselines) on a dataset\n"
      "  obfuscate  apply a countermeasure and write the perturbed dataset\n"
      "  serve      stream check-ins through the crash-safe ingestion "
      "daemon\n"
      "\nglobal flags:\n"
      "  --list-failpoints  print the compiled-in fault-injection registry\n"
      "\nrun 'friendseeker <command> --help' for command options\n");
  return 2;
}

int list_failpoints() {
  std::printf("compiled-in failpoints (activate via FS_FAILPOINTS, e.g.\n"
              "FS_FAILPOINTS=\"data.load.open=error;nn.train.nan=nan:"
              "limit=2\"):\n\n");
  for (const auto& fp : util::failpoint::known_failpoints())
    std::printf("  %-26s %-9s %s\n", fp.name, fp.actions, fp.description);
  std::printf("\nper-failpoint config: skip=N, limit=N, latency_ms=N; any "
              "entry also\naccepts the latency action (delay without "
              "failing).\n");
  return 0;
}

data::Dataset load_positional(const util::ArgParser& args,
                              const data::LoadOptions& options = {},
                              data::LoadReport* report = nullptr) {
  if (args.positional().size() < 2)
    throw std::invalid_argument("expected: CHECKINS EDGES");
  return data::load_checkins_snap(args.positional()[0], args.positional()[1],
                                  options, report);
}

int cmd_generate(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("preset", "gowalla", "world preset: gowalla | brightkite");
  args.add_option("out", "world_out", "output directory");
  args.add_option("users", "0", "override user count (0 = preset)");
  args.add_option("pois", "0", "override POI count (0 = preset)");
  args.add_option("weeks", "0", "override observation weeks (0 = preset)");
  args.add_option("seed", "0", "override RNG seed (0 = preset)");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fputs(args.help().c_str(), stderr);
    return 0;
  }

  data::SyntheticWorldConfig cfg = args.get("preset") == "brightkite"
                                       ? data::brightkite_like()
                                       : data::gowalla_like();
  if (args.get_int("users") > 0)
    cfg.user_count = static_cast<std::size_t>(args.get_int("users"));
  if (args.get_int("pois") > 0)
    cfg.poi_count = static_cast<std::size_t>(args.get_int("pois"));
  if (args.get_int("weeks") > 0)
    cfg.weeks = static_cast<int>(args.get_int("weeks"));
  if (args.get_int("seed") > 0)
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const data::SyntheticWorld world = data::generate_world(cfg);
  const std::string dir = args.get("out");
  std::filesystem::create_directories(dir);
  data::save_checkins_snap(world.dataset, dir + "/checkins.txt",
                           dir + "/edges.txt");
  std::printf("wrote %s/checkins.txt (%zu records) and %s/edges.txt "
              "(%zu links)\n",
              dir.c_str(), world.dataset.checkin_count(), dir.c_str(),
              world.dataset.friendships().edge_count());
  return 0;
}

int cmd_stats(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("store", "",
                  "read a columnar store (.fsst) instead of SNAP text; runs "
                  "full checksum verification and reports store internals");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fprintf(stderr,
                 "usage: friendseeker stats CHECKINS EDGES | --store FILE\n");
    return 0;
  }
  data::Dataset ds;
  if (!args.get("store").empty()) {
    obs::Span verify_span("store.open_verify");
    const store::MappedStore mapped =
        store::MappedStore::open(args.get("store"), store::Verify::kFull);
    verify_span.end();
    obs::Span mat_span("store.materialize");
    ds = mapped.to_dataset();
    mat_span.end();
    const store::StoreHeader& h = mapped.header();
    util::Table store_table({"rows", "grids", "slots", "sigma", "tau h",
                             "file MB", "verify ms", "materialize ms"});
    store_table.new_row()
        .add(static_cast<std::size_t>(h.row_count))
        .add(static_cast<std::size_t>(h.grid_count))
        .add(static_cast<std::size_t>(h.slot_count))
        .add(static_cast<std::size_t>(h.sigma))
        .add(static_cast<double>(h.tau_seconds) / 3600.0, 1)
        .add(static_cast<double>(mapped.file_bytes()) / (1024.0 * 1024.0), 1)
        .add(verify_span.milliseconds(), 1)
        .add(mat_span.milliseconds(), 1);
    store_table.print("store (full verification: every payload checksum)");
    const data::LoadReport report = mapped.load_report();
    if (report.quarantined_checkins() > 0 || report.quarantined_edges() > 0)
      std::fprintf(stderr, "%s\n", report.summary().c_str());
    mapped.release_pages();
  } else {
    ds = load_positional(args);
  }
  const data::DatasetStats s = data::dataset_stats(ds);
  util::Table table({"pois", "users", "checkins", "checkins/user", "links"});
  table.new_row()
      .add(s.pois)
      .add(s.users)
      .add(s.checkins)
      .add(s.mean_checkins_per_user, 1)
      .add(s.links);
  table.print("dataset statistics");

  const eval::LabeledPairs pairs = eval::sample_candidate_pairs(ds);
  std::vector<data::UserPair> friends, strangers;
  for (std::size_t i = 0; i < pairs.pairs.size(); ++i)
    (pairs.labels[i] ? friends : strangers).push_back(pairs.pairs[i]);
  const auto census = data::co_presence_census(ds, friends, strangers);
  util::Table census_table(
      {"population", "CL&CF %", "CL only %", "CF only %", "neither %"});
  census_table.new_row()
      .add("friends")
      .add(census.friends[1][1] * 100, 1)
      .add(census.friends[1][0] * 100, 1)
      .add(census.friends[0][1] * 100, 1)
      .add(census.friends[0][0] * 100, 1);
  census_table.new_row()
      .add("non-friends")
      .add(census.non_friends[1][1] * 100, 1)
      .add(census.non_friends[1][0] * 100, 1)
      .add(census.non_friends[0][1] * 100, 1)
      .add(census.non_friends[0][0] * 100, 1);
  census_table.print("co-presence census (balanced pair sample)");
  return 0;
}

/// In-memory footprint of a materialized Dataset — what a store-backed run
/// actually keeps resident, as opposed to the store's file size (which
/// stays on disk; the mapping is dropped after materialization).
std::size_t dataset_resident_estimate(const data::Dataset& ds) {
  return ds.checkin_count() * sizeof(data::CheckIn) +
         ds.poi_count() * sizeof(data::Poi) +
         (ds.user_count() + 1) * sizeof(std::size_t) +
         ds.friendships().edge_count() * 2 * sizeof(graph::NodeId);
}

int cmd_convert(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("out", "checkins.fsst", "store file to write");
  args.add_option("sigma", "45",
                  "quadtree leaf capacity baked into the cell column");
  args.add_option("tau", "1", "time-slot length in days for the slot column");
  args.add_option("min-checkins", "2",
                  "drop users with fewer check-ins (loader activity floor)");
  args.add_option("max-users", "0",
                  "cap on users after the activity floor (0 = unlimited)");
  args.add_option("deadline-sec", "0",
                  "wall-clock budget for the conversion (0 = unlimited)");
  args.add_flag("strict", "abort on the first malformed input line (default)");
  args.add_flag("permissive",
                "quarantine malformed input lines instead of aborting; the "
                "census is persisted into the store header");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fprintf(stderr, "usage: friendseeker convert CHECKINS EDGES "
                         "[options]\n%s",
                 args.help().c_str());
    return 0;
  }
  if (args.get_flag("strict") && args.get_flag("permissive"))
    throw std::invalid_argument("--strict and --permissive are exclusive");
  if (args.positional().size() < 2)
    throw std::invalid_argument("expected: CHECKINS EDGES");
  util::set_log_level(util::LogLevel::kInfo);

  runtime::install_signal_handlers();
  runtime::ExecutionContext context;
  context.set_cancellation(&runtime::global_token());
  if (args.get_double("deadline-sec") > 0.0)
    context.set_deadline_seconds(args.get_double("deadline-sec"));

  store::ConvertOptions options;
  options.sigma = static_cast<std::size_t>(args.get_int("sigma"));
  options.tau_seconds = static_cast<geo::Timestamp>(
      args.get_double("tau") * static_cast<double>(geo::kSecondsPerDay));
  options.load.strictness = args.get_flag("permissive")
                                ? data::Strictness::kPermissive
                                : data::Strictness::kStrict;
  options.load.min_checkins = static_cast<int>(args.get_int("min-checkins"));
  options.load.max_users =
      static_cast<std::size_t>(args.get_int("max-users"));
  options.load.context = &context;

  data::LoadReport report;
  const store::ConvertStats stats = store::convert_snap_to_store(
      args.positional()[0], args.positional()[1], args.get("out"), options,
      &report);
  if (args.get_flag("permissive") && (report.quarantined_checkins() > 0 ||
                                      report.quarantined_edges() > 0))
    std::fprintf(stderr, "%s\n", report.summary().c_str());
  std::printf("wrote %s: %zu rows, %zu users, %zu pois, %zu edges, "
              "%zu grids x %zu slots, %.1f MB\n",
              args.get("out").c_str(), stats.rows, stats.users, stats.pois,
              stats.edges, stats.grid_count, stats.slot_count,
              static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0));
  return 0;
}

int cmd_attack(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("sigma", "0", "max POIs per grid (0 = poi_count / 8)");
  args.add_option("tau", "7", "time-slot length in days");
  args.add_option("dim", "64", "presence feature dimension d");
  args.add_option("k", "3", "k-hop subgraph depth");
  args.add_option("iterations", "6", "max refinement iterations");
  args.add_option("blocking", "auto",
                  "candidate blocking: on | off | auto (auto prunes only "
                  "when the pair universe is large); pruned pairs are "
                  "predicted non-friend without scoring");
  args.add_option("block-hops", "2",
                  "keep pairs within this many hops of the strong "
                  "co-occurrence graph even without direct co-occurrence");
  args.add_option("block-slot-tolerance", "1",
                  "time-slot tolerance for cell co-occurrence blocking");
  args.add_option("store", "",
                  "read the dataset from a columnar store (.fsst, see "
                  "'convert') instead of CHECKINS EDGES positionals; the "
                  "store is fully verified, materialized, and its pages "
                  "dropped — memory accounting charges the resident "
                  "estimate, not the file size");
  args.add_option("shards", "0",
                  "partition the spatial division into N quadtree-subtree "
                  "shards and run the index build and phase-1 scoring "
                  "shard by shard (0 = monolithic; the final graph is "
                  "byte-identical at any shard count)");
  args.add_option("max-iterations", "0",
                  "alias for --iterations (overrides it when > 0)");
  args.add_option("deadline-sec", "0",
                  "wall-clock budget for the whole run (0 = unlimited)");
  args.add_option("max-memory-mb", "0",
                  "budget for the estimated working-set memory "
                  "(0 = unlimited)");
  args.add_option("checkpoint-dir", "",
                  "checkpoint the working state here after each iteration");
  args.add_option("metrics-out", "",
                  "write metrics here as JSON (plus a .prom twin in "
                  "Prometheus text format)");
  args.add_option("trace-out", "",
                  "write a Chrome trace_event JSON here (loads in Perfetto "
                  "/ chrome://tracing)");
  args.add_option("metrics-interval-sec", "0",
                  "also rewrite --metrics-out every S seconds, so a killed "
                  "run keeps telemetry (0 = only at exit)");
  args.add_option("threads", "0",
                  "worker threads for parallel regions (0 = FS_THREADS env "
                  "or hardware concurrency); results are identical for any "
                  "value");
  args.add_option("knn-quantize", "off",
                  "on | off: route phase-1 KNN through the int8 "
                  "lower-bound distance engine (pruned rows skip the exact "
                  "distance; survivors are re-ranked in full precision)");
  args.add_flag("baselines", "also run the four baseline attacks");
  args.add_flag("strict", "abort on the first malformed input line (default)");
  args.add_flag("permissive",
                "quarantine malformed input lines instead of aborting");
  args.add_flag("resume", "resume from the last checkpoint in "
                          "--checkpoint-dir");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fprintf(stderr, "usage: friendseeker attack CHECKINS EDGES "
                         "[options]\n%s",
                 args.help().c_str());
    return 0;
  }
  if (args.get_flag("strict") && args.get_flag("permissive"))
    throw std::invalid_argument("--strict and --permissive are exclusive");
  util::set_log_level(util::LogLevel::kInfo);
  par::set_threads(static_cast<std::size_t>(args.get_int("threads")));

  // Observability: the registry is live whenever a metrics file was asked
  // for; the tracer only when a trace file was (spans stay two clock reads
  // otherwise).
  const std::string metrics_out = args.get("metrics-out");
  const std::string trace_out = args.get("trace-out");
  if (!metrics_out.empty()) obs::set_metrics_enabled(true);
  if (!trace_out.empty()) obs::tracer().enable();
  std::unique_ptr<obs::PeriodicSnapshotWriter> snapshots;
  if (!metrics_out.empty() &&
      args.get_double("metrics-interval-sec") > 0.0)
    snapshots = std::make_unique<obs::PeriodicSnapshotWriter>(
        metrics_out, args.get_double("metrics-interval-sec"));

  // Governance: route SIGINT/SIGTERM into the cancellation token and bound
  // the run by wall clock and estimated memory when asked to.
  runtime::install_signal_handlers();
  runtime::ExecutionContext context;
  context.set_cancellation(&runtime::global_token());
  if (args.get_double("deadline-sec") > 0.0)
    context.set_deadline_seconds(args.get_double("deadline-sec"));
  if (args.get_int("max-memory-mb") > 0)
    context.set_memory_limit(
        static_cast<std::size_t>(args.get_int("max-memory-mb")) * 1024 *
        1024);

  const std::string store_path = args.get("store");
  data::LoadReport load_report;
  runtime::MemoryCharge dataset_charge;
  data::Dataset ds;
  if (!store_path.empty()) {
    // Store-backed path: full verification (every block CRC + the sort
    // fingerprint), materialize, then drop the mapping's pages. What the
    // run keeps is the materialized Dataset — so that is what the memory
    // budget is charged for (plus whatever pages the kernel still holds),
    // NOT the store's file size, which stays on disk.
    const store::MappedStore mapped = store::MappedStore::open(store_path);
    load_report = mapped.load_report();
    ds = mapped.to_dataset();
    mapped.release_pages();
    dataset_charge = runtime::MemoryCharge(
        &context, dataset_resident_estimate(ds) + mapped.resident_bytes(),
        "store.dataset");
  } else {
    data::LoadOptions load_options;
    load_options.strictness = args.get_flag("permissive")
                                  ? data::Strictness::kPermissive
                                  : data::Strictness::kStrict;
    load_options.context = &context;
    ds = load_positional(args, load_options, &load_report);
  }
  if (args.get_flag("permissive") &&
      (load_report.quarantined_checkins() > 0 ||
       load_report.quarantined_edges() > 0))
    std::fprintf(stderr, "%s\n", load_report.summary().c_str());
  const eval::Experiment experiment = eval::make_experiment(
      ds, store_path.empty() ? args.positional()[0] : store_path);

  core::FriendSeekerConfig cfg = eval::default_seeker_config();
  cfg.sigma = args.get_int("sigma") > 0
                  ? static_cast<std::size_t>(args.get_int("sigma"))
                  : std::max<std::size_t>(40, ds.poi_count() / 8);
  cfg.tau_days = args.get_double("tau");
  cfg.presence.feature_dim = static_cast<std::size_t>(args.get_int("dim"));
  const std::string knn_quantize = args.get("knn-quantize");
  if (knn_quantize != "on" && knn_quantize != "off")
    throw std::invalid_argument("--knn-quantize must be on or off");
  cfg.presence.knn_quantize = knn_quantize == "on";
  cfg.k = static_cast<int>(args.get_int("k"));
  cfg.max_iterations = args.get_int("max-iterations") > 0
                           ? static_cast<int>(args.get_int("max-iterations"))
                           : static_cast<int>(args.get_int("iterations"));
  const std::string blocking = args.get("blocking");
  if (blocking == "on")
    cfg.blocking.mode = block::BlockingMode::kOn;
  else if (blocking == "off")
    cfg.blocking.mode = block::BlockingMode::kOff;
  else if (blocking == "auto")
    cfg.blocking.mode = block::BlockingMode::kAuto;
  else
    throw std::invalid_argument("--blocking must be on, off, or auto");
  cfg.blocking.hop_expansion = static_cast<int>(args.get_int("block-hops"));
  cfg.blocking.slot_tolerance =
      static_cast<int>(args.get_int("block-slot-tolerance"));
  cfg.shards = static_cast<std::size_t>(args.get_int("shards"));
  cfg.checkpoint_dir = args.get("checkpoint-dir");
  cfg.resume = args.get_flag("resume");
  cfg.context = &context;
  if (cfg.resume && cfg.checkpoint_dir.empty())
    throw std::invalid_argument("--resume requires --checkpoint-dir");

  util::Table table({"attack", "F1", "precision", "recall"});
  auto record = [&](baselines::FriendshipAttack& attack) {
    const ml::Prf prf = eval::run_attack(attack, experiment);
    table.new_row()
        .add(attack.name())
        .add(prf.f1, 4)
        .add(prf.precision, 4)
        .add(prf.recall, 4);
  };
  eval::FriendSeekerAttack seeker(cfg);
  record(seeker);
  if (args.get_flag("baselines"))
    for (const auto& baseline : eval::make_baselines()) record(*baseline);
  table.print("attack results (70/30 pair split)");
  std::printf("result digest: %s  final graph digest: %s\n",
              eval::result_digest(seeker.last_result()).c_str(),
              eval::graph_digest(seeker.last_result().final_graph).c_str());

  const runtime::DegradationReport& degradation =
      seeker.last_result().degradation;
  if (degradation.degraded())
    std::fprintf(stderr, "run degraded (last-good results shown):\n%s\n",
                 degradation.to_string().c_str());
  if (seeker.last_result().peak_memory_estimate > 0)
    std::fprintf(stderr, "peak working-set estimate: %.1f MB\n",
                 static_cast<double>(
                     seeker.last_result().peak_memory_estimate) /
                     (1024.0 * 1024.0));
  if (seeker.last_result().blocking_active) {
    const auto& bs = seeker.last_result().blocking;
    std::fprintf(stderr,
                 "blocking: scored %zu of %zu pairs (%zu pruned, %zu kept "
                 "via hop expansion, %zu forced train pairs)\n",
                 bs.scored_pairs, bs.universe_pairs, bs.pruned_pairs,
                 bs.hop_candidates, bs.forced_pairs);
  }
  if (!seeker.last_result().shards.empty()) {
    util::Table shard_table({"shard", "grids", "rows", "universe", "scored",
                             "pruned", "wall ms"});
    for (std::size_t s = 0; s < seeker.last_result().shards.size(); ++s) {
      const auto& st = seeker.last_result().shards[s];
      shard_table.new_row()
          .add(s)
          .add(static_cast<std::size_t>(st.grid_hi - st.grid_lo))
          .add(st.rows)
          .add(st.universe_pairs)
          .add(st.scored_pairs)
          .add(st.pruned_pairs)
          .add(st.wall_ms, 1);
    }
    shard_table.print("sharded execution (digest-identical to monolithic)");
  }
  {
    const auto& cs = seeker.last_result().cache;
    std::fprintf(stderr,
                 "feature cache: %.1f%% hit rate (%llu hits / %llu misses), "
                 "%.1f MB cached\n",
                 cs.hit_rate() * 100.0,
                 static_cast<unsigned long long>(cs.hits()),
                 static_cast<unsigned long long>(cs.misses()),
                 static_cast<double>(cs.bytes) / (1024.0 * 1024.0));
  }

  // Telemetry files are written on every exit path, interrupted included —
  // a cancelled run's partial telemetry is exactly when you want it.
  if (snapshots != nullptr) snapshots->stop();
  if (!metrics_out.empty()) {
    if (snapshots == nullptr) obs::write_metrics_files(obs::metrics(),
                                                       metrics_out);
    std::fprintf(stderr, "metrics: %s (and %s)\n", metrics_out.c_str(),
                 obs::prometheus_path_for(metrics_out).c_str());
  }
  if (!trace_out.empty()) {
    obs::tracer().write_chrome_json(trace_out);
    std::fprintf(stderr, "trace: %s (load in Perfetto or "
                 "chrome://tracing)\n", trace_out.c_str());
  }
  if (degradation.cancelled() || runtime::global_token().requested()) {
    std::fprintf(stderr, "interrupted by signal %d; last checkpoint kept\n",
                 runtime::last_signal());
    return 130;
  }
  return 0;
}

int cmd_serve(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("source", "replay",
                  "event source: replay (SNAP file, file order, rate-limited "
                  "by --events-per-tick) | tail (follow a growing file)");
  args.add_option("listen", "",
                  "HOST:PORT — take events from the network instead of a "
                  "file (fs::net wire protocol; see tools/feed_client) and "
                  "serve /metrics, /healthz, /streamz over HTTP on the same "
                  "port; SIGTERM drains gracefully and exits 0");
  args.add_option("max-conns", "64",
                  "with --listen: established-connection cap (overflow is "
                  "shed and counted)");
  args.add_option("idle-timeout-ms", "30000",
                  "with --listen: reap connections with no read/write "
                  "progress for this long (slow-loris / stalled-scrape "
                  "defense)");
  args.add_option("journal-dir", "",
                  "durability directory (CRC-framed journal + snapshots); "
                  "empty = volatile run, no crash recovery");
  args.add_option("snapshot-every", "0",
                  "write an incremental snapshot (and compact the journal) "
                  "every N ticks (0 = only at shutdown)");
  args.add_option("tick-ms", "50",
                  "per-tick wall-clock budget for re-deciding the dirty "
                  "pair frontier (0 = unlimited)");
  args.add_option("staleness-budget-ms", "200",
                  "staleness SLO: the oldest dirty pair may lag at most "
                  "this far behind (converted to ticks of --tick-ms)");
  args.add_option("events-per-tick", "64",
                  "lines polled from the source and consumed from the ring "
                  "per tick (the replay event rate)");
  args.add_option("ring-capacity", "256", "backpressure ring capacity");
  args.add_option("backpressure", "block",
                  "ring-full policy: block (lossless, stalls the source) | "
                  "shed (drop overflow with accounting)");
  args.add_option("max-ticks", "0", "stop after N ticks (0 = run to "
                                    "exhaustion / cancellation)");
  args.add_option("lateness-budget-sec", "0",
                  "quarantine events older than the watermark minus this "
                  "budget (0 = accept any order, like the batch loader)");
  args.add_option("sigma", "16", "quadtree leaf capacity for the live index");
  args.add_option("tau", "1", "time-slot length in days for the live index");
  args.add_option("iterations", "6",
                  "max refinement iterations for --finalize pipeline runs");
  args.add_option("expect-digest", "",
                  "hex digest the drained engine state must match; "
                  "mismatch exits 3 (convergence differential)");
  args.add_option("finalize-every", "0",
                  "with --finalize: also run the pipeline every N ticks, "
                  "delta-invalidating the shared feature cache (0 = only "
                  "at the end)");
  args.add_option("metrics-out", "",
                  "write metrics here as JSON (plus a .prom twin)");
  args.add_flag("finalize",
                "after the stream drains, assemble the batch-equivalent "
                "dataset and run the full FriendSeeker pipeline on it "
                "(requires the EDGES positional)");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fprintf(stderr,
                 "usage: friendseeker serve CHECKINS [EDGES] [options]\n%s",
                 args.help().c_str());
    return 0;
  }
  const std::string listen = args.get("listen");
  if (listen.empty() && args.positional().empty())
    throw std::invalid_argument("expected: CHECKINS [EDGES]");
  if (!listen.empty() && args.get_flag("finalize"))
    throw std::invalid_argument(
        "--listen serves an endless stream; run finalize separately against "
        "the recovered journal (serve --source replay --finalize)");
  util::set_log_level(util::LogLevel::kInfo);
  const std::string metrics_out = args.get("metrics-out");
  if (!metrics_out.empty()) obs::set_metrics_enabled(true);

  runtime::install_signal_handlers();
  runtime::ExecutionContext context;
  context.set_cancellation(&runtime::global_token());

  stream::ServeConfig cfg;
  cfg.engine.sigma = static_cast<std::size_t>(args.get_int("sigma"));
  cfg.engine.tau_days = args.get_double("tau");
  cfg.engine.lateness_budget_sec =
      static_cast<geo::Timestamp>(args.get_int("lateness-budget-sec"));
  cfg.ring_capacity = static_cast<std::size_t>(args.get_int("ring-capacity"));
  cfg.events_per_tick =
      static_cast<std::size_t>(args.get_int("events-per-tick"));
  cfg.tick_budget_ms = args.get_double("tick-ms");
  const double staleness_ms = args.get_double("staleness-budget-ms");
  cfg.staleness_budget_ticks =
      cfg.tick_budget_ms > 0
          ? static_cast<std::uint64_t>(
                std::max(1.0, staleness_ms / cfg.tick_budget_ms))
          : 4;
  cfg.journal_dir = args.get("journal-dir");
  cfg.snapshot_every =
      static_cast<std::uint64_t>(args.get_int("snapshot-every"));
  cfg.max_ticks = static_cast<std::uint64_t>(args.get_int("max-ticks"));
  const std::string backpressure = args.get("backpressure");
  if (backpressure == "block")
    cfg.backpressure = stream::Backpressure::kBlock;
  else if (backpressure == "shed")
    cfg.backpressure = stream::Backpressure::kShed;
  else
    throw std::invalid_argument("--backpressure must be block or shed");
  const std::string source_kind = args.get("source");
  std::unique_ptr<net::NetServer> server;
  std::unique_ptr<stream::EventSource> source;
  if (!listen.empty()) {
    net::NetConfig net_cfg;
    const auto colon = listen.rfind(':');
    if (colon == std::string::npos)
      throw std::invalid_argument("--listen expects HOST:PORT");
    net_cfg.bind_host = listen.substr(0, colon);
    net_cfg.port =
        static_cast<std::uint16_t>(util::parse_int(listen.substr(colon + 1)));
    net_cfg.max_connections =
        static_cast<std::size_t>(args.get_int("max-conns"));
    net_cfg.idle_timeout_ms = args.get_double("idle-timeout-ms");
    server = std::make_unique<net::NetServer>(net_cfg);
    source = std::make_unique<net::SocketSource>(*server);
    cfg.stop_when_exhausted = false;
    cfg.idle_sleep_ms = cfg.tick_budget_ms > 0 ? cfg.tick_budget_ms : 50.0;
    cfg.drain_on_cancel = true;  // SIGTERM = graceful drain, exit 0
    net::NetServer* srv = server.get();
    cfg.after_tick = [srv](stream::ServeDaemon& d) {
      if (srv->commit_pending()) {
        // Durable-commit path: fsync the journal, then publish how far it
        // covers; the server acks every commit at or below that watermark.
        d.sync_journal();
        srv->publish_durable(d.journaled_watermark());
      }
      srv->publish_streamz(d.streamz_json());
    };
  } else if (source_kind == "replay") {
    source = std::make_unique<stream::ReplaySource>(args.positional()[0]);
  } else if (source_kind == "tail") {
    source = std::make_unique<stream::FileTailSource>(args.positional()[0]);
    cfg.stop_when_exhausted = false;
    cfg.idle_sleep_ms = cfg.tick_budget_ms > 0 ? cfg.tick_budget_ms : 50.0;
  } else {
    throw std::invalid_argument("--source must be replay or tail");
  }
  util::Diagnostics diagnostics;
  cfg.context = &context;
  cfg.diagnostics = &diagnostics;
  if (!cfg.journal_dir.empty())
    std::filesystem::create_directories(cfg.journal_dir);

  stream::ServeDaemon daemon(std::move(cfg), std::move(source));
  const stream::RecoveryInfo recovery = daemon.recover();
  if (recovery.snapshot_used || recovery.journal_frames_replayed > 0)
    std::fprintf(stderr,
                 "recovered: %llu consumed lines (snapshot %s, %llu journal "
                 "frames%s)\n",
                 static_cast<unsigned long long>(recovery.consumed_lines),
                 recovery.snapshot_used ? "used" : "absent",
                 static_cast<unsigned long long>(
                     recovery.journal_frames_replayed),
                 recovery.journal_truncated ? ", torn tail cut" : "");
  if (server != nullptr) {
    server->start();
    std::fprintf(stderr,
                 "listening on %s:%u (feed protocol + GET /metrics "
                 "/healthz /streamz)\n",
                 listen.substr(0, listen.rfind(':')).c_str(),
                 static_cast<unsigned>(server->port()));
  }

  // The finalize path shares one feature cache across repeated pipeline
  // runs: the engine reports which users each delta touched, the cache
  // evicts exactly their JOC rows (presence drops wholesale — its model
  // retrains), and carry_joc_across_next_prepare lets the rows of
  // untouched pairs survive the signature change. The carry is only sound
  // while the POI universe (hence the quadtree division) and the JOC
  // width are unchanged; a POI-count change falls back to a full drop.
  block::FeatureCache cache;
  std::size_t finalized_poi_count = 0;
  bool cache_primed = false;
  const bool finalize = args.get_flag("finalize");
  if (finalize && args.positional().size() < 2)
    throw std::invalid_argument("--finalize requires the EDGES positional");
  auto run_finalize = [&](const char* label) {
    const auto raw_edges = data::read_edges_file(args.positional()[1]);
    std::vector<long long> dense_to_raw;
    data::LoadReport report;
    const data::Dataset ds =
        daemon.engine().to_dataset(raw_edges, {}, &report, &dense_to_raw);
    if (ds.user_count() < 4) {
      std::fprintf(stderr,
                   "finalize(%s): only %zu active users, skipping pipeline\n",
                   label, ds.user_count());
      return;
    }
    const auto touched_raw = daemon.engine().take_touched_users();
    if (cache_primed && ds.poi_count() == finalized_poi_count) {
      std::unordered_map<long long, data::UserId> raw_to_dense;
      for (std::size_t i = 0; i < dense_to_raw.size(); ++i)
        raw_to_dense.emplace(dense_to_raw[i],
                             static_cast<data::UserId>(i));
      std::vector<data::UserId> touched_dense;
      for (const auto raw : touched_raw) {
        const auto it = raw_to_dense.find(raw);
        if (it != raw_to_dense.end()) touched_dense.push_back(it->second);
      }
      const std::size_t evicted = cache.invalidate_joc_touching(touched_dense);
      cache.invalidate_presence_all();
      cache.carry_joc_across_next_prepare();
      std::fprintf(stderr,
                   "finalize(%s): delta-invalidated %zu JOC rows for %zu "
                   "touched users (carrying the rest)\n",
                   label, evicted, touched_dense.size());
    }
    finalized_poi_count = ds.poi_count();
    cache_primed = true;

    const eval::Experiment experiment =
        eval::make_experiment(ds, args.positional()[0]);
    core::FriendSeekerConfig seeker_cfg = eval::default_seeker_config();
    seeker_cfg.sigma = static_cast<std::size_t>(args.get_int("sigma"));
    seeker_cfg.tau_days = args.get_double("tau");
    seeker_cfg.max_iterations = static_cast<int>(args.get_int("iterations"));
    seeker_cfg.context = &context;
    seeker_cfg.feature_cache = &cache;
    eval::FriendSeekerAttack seeker(seeker_cfg);
    const ml::Prf prf = eval::run_attack(seeker, experiment);
    const auto& cs = seeker.last_result().cache;
    std::fprintf(stderr,
                 "finalize(%s): F1 %.4f | cache %.1f%% hit rate, %zu JOC + "
                 "%zu presence rows\n",
                 label, prf.f1, cs.hit_rate() * 100.0, cs.joc_rows,
                 cs.presence_rows);
  };

  stream::ServeReport report;
  const auto max_ticks_flag =
      static_cast<std::uint64_t>(args.get_int("max-ticks"));
  if (finalize && args.get_int("finalize-every") > 0) {
    // Chunked run: serve N ticks, finalize with delta invalidation, repeat
    // until the stream stops (exhaustion, max-ticks, or a signal).
    const auto chunk = static_cast<std::uint64_t>(
        args.get_int("finalize-every"));
    while (true) {
      report = daemon.run_for(chunk);
      run_finalize("periodic");
      if (report.exhausted || report.cancelled) break;
      if (max_ticks_flag != 0 && report.ticks >= max_ticks_flag) break;
    }
  } else {
    report = daemon.run();
    if (finalize) run_finalize("final");
  }

  std::fprintf(stderr,
               "serve: %llu ticks, %llu consumed (%llu accepted, %llu "
               "quarantined, %llu shed), %llu blocked polls, %llu "
               "snapshots, %llu deadline hits, max staleness %llu ticks "
               "(%llu violations), %llu live edges\n",
               static_cast<unsigned long long>(report.ticks),
               static_cast<unsigned long long>(report.consumed_lines),
               static_cast<unsigned long long>(report.accepted),
               static_cast<unsigned long long>(report.quarantined),
               static_cast<unsigned long long>(report.shed),
               static_cast<unsigned long long>(report.blocked_polls),
               static_cast<unsigned long long>(report.snapshots_written),
               static_cast<unsigned long long>(report.deadline_hits),
               static_cast<unsigned long long>(report.max_staleness_ticks),
               static_cast<unsigned long long>(report.staleness_violations),
               static_cast<unsigned long long>(report.live_edges));
  if (report.quarantined > 0)
    std::fprintf(stderr, "%s\n", daemon.quarantine().summary().c_str());
  std::printf("state digest: %016llx\n",
              static_cast<unsigned long long>(report.final_digest));
  if (!metrics_out.empty()) {
    obs::write_metrics_files(obs::metrics(), metrics_out);
    std::fprintf(stderr, "metrics: %s\n", metrics_out.c_str());
  }
  if (server != nullptr) {
    // Graceful drain: stop accepting, close out connections, and report the
    // shutdown as orderly — the ring was drained, the journal fsynced, and
    // a final snapshot written by drain_on_cancel. Items still queued in
    // the server are unacknowledged; clients resend them on reconnect.
    server->stop_accepting();
    const auto net_stats = server->stats();
    server->stop();
    std::fprintf(stderr,
                 "net: %llu connections (%llu shed, %llu reaped), %llu "
                 "frames (%llu rejected, %llu torn tails), %llu commits "
                 "acked, %llu http requests\n",
                 static_cast<unsigned long long>(net_stats.connections_total),
                 static_cast<unsigned long long>(net_stats.connections_shed),
                 static_cast<unsigned long long>(net_stats.connections_reaped),
                 static_cast<unsigned long long>(net_stats.frames_total),
                 static_cast<unsigned long long>(net_stats.frames_rejected),
                 static_cast<unsigned long long>(net_stats.torn_tails),
                 static_cast<unsigned long long>(net_stats.commits_acked),
                 static_cast<unsigned long long>(net_stats.http_requests));
    if (report.cancelled || runtime::global_token().requested())
      std::fprintf(stderr,
                   "drained on signal %d: journal fsynced, snapshot "
                   "written\n",
                   runtime::last_signal());
  } else if (report.cancelled || runtime::global_token().requested()) {
    std::fprintf(stderr, "interrupted by signal %d; journal intact\n",
                 runtime::last_signal());
    return 130;
  }
  const std::string expect = args.get("expect-digest");
  if (!expect.empty()) {
    const auto expected = std::stoull(expect, nullptr, 16);
    if (expected != report.final_digest) {
      std::fprintf(stderr,
                   "digest mismatch: expected %016llx, got %016llx\n",
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(report.final_digest));
      return 3;
    }
  }
  return 0;
}

int cmd_obfuscate(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("mechanism", "hide",
                  "hide | blur-in | blur-cross | friendguard");
  args.add_option("ratio", "0.3", "perturbation budget in [0, 1]");
  args.add_option("sigma", "0", "grid sigma for blurring (0 = poi/8)");
  args.add_option("out", "obfuscated_out", "output directory");
  args.add_option("seed", "7", "RNG seed");
  args.add_flag("help", "show options");
  args.parse(argc, argv, 2);
  if (args.get_flag("help")) {
    std::fprintf(stderr, "usage: friendseeker obfuscate CHECKINS EDGES "
                         "[options]\n%s",
                 args.help().c_str());
    return 0;
  }
  const data::Dataset ds = load_positional(args);
  const double ratio = args.get_double("ratio");
  const std::size_t sigma =
      args.get_int("sigma") > 0
          ? static_cast<std::size_t>(args.get_int("sigma"))
          : std::max<std::size_t>(40, ds.poi_count() / 8);
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  data::Dataset out = ds;
  const std::string mechanism = args.get("mechanism");
  if (mechanism == "hide") {
    out = data::hide_checkins(ds, ratio, rng);
  } else if (mechanism == "blur-in") {
    const geo::QuadtreeDivision division(ds.poi_coordinates(), sigma);
    out = data::blur_in_grid(ds, ratio, division, rng);
  } else if (mechanism == "blur-cross") {
    const geo::QuadtreeDivision division(ds.poi_coordinates(), sigma);
    out = data::blur_cross_grid(ds, ratio, division, rng);
  } else if (mechanism == "friendguard") {
    const geo::QuadtreeDivision division(ds.poi_coordinates(), sigma);
    data::FriendGuardConfig guard;
    guard.budget = ratio;
    guard.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    out = data::friend_guard(ds, division, guard);
  } else {
    throw std::invalid_argument("unknown mechanism '" + mechanism + "'");
  }

  const std::string dir = args.get("out");
  std::filesystem::create_directories(dir);
  data::save_checkins_snap(out, dir + "/checkins.txt", dir + "/edges.txt");
  std::printf("%s at ratio %.2f: %zu -> %zu check-ins, written to %s/\n",
              mechanism.c_str(), ratio, ds.checkin_count(),
              out.checkin_count(), dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "--list-failpoints") return list_failpoints();
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
    if (command == "attack") return cmd_attack(argc, argv);
    if (command == "obfuscate") return cmd_obfuscate(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
  } catch (const fs::CancelledError& e) {
    // Cancellation at a hard checkpoint (e.g. mid-load): the working state
    // is unusable, exit with the conventional interrupted status.
    std::fprintf(stderr, "friendseeker %s: interrupted: %s\n",
                 command.c_str(), e.what());
    return 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "friendseeker %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
