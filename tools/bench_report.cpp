// bench_report — collates the CSVs produced by the bench suite under
// bench_out/ into a single Markdown report (REPORT.md) with one section per
// reproduced table/figure, plus a machine-readable JSON twin.
//
//   ./build/tools/bench_report [--dir bench_out] [--out REPORT.md]
//                              [--json-out REPORT.json]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/args.h"
#include "util/strings.h"

namespace {

/// Minimal CSV reader (handles the quoting Table::to_csv produces).
std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char ch = line[i];
      if (quoted) {
        if (ch == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            cell += '"';
            ++i;
          } else {
            quoted = false;
          }
        } else {
          cell += ch;
        }
      } else if (ch == '"') {
        quoted = true;
      } else if (ch == ',') {
        cells.push_back(std::move(cell));
        cell.clear();
      } else {
        cell += ch;
      }
    }
    cells.push_back(std::move(cell));
    rows.push_back(std::move(cells));
  }
  return rows;
}

std::string markdown_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "(empty)\n";
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    oss << '|';
    for (const std::string& cell : cells) oss << ' ' << cell << " |";
    oss << '\n';
  };
  emit(rows[0]);
  oss << '|';
  for (std::size_t c = 0; c < rows[0].size(); ++c) oss << "---|";
  oss << '\n';
  for (std::size_t r = 1; r < rows.size(); ++r) emit(rows[r]);
  return oss.str();
}

/// Human titles for known artifacts; unknown files fall back to the stem.
const std::map<std::string, std::string>& titles() {
  static const std::map<std::string, std::string> kTitles = {
      {"table1_stats", "Table I — dataset statistics"},
      {"table2_proportions", "Table II — co-presence proportions"},
      {"fig1_cdfs", "Fig 1 — CDFs of common POIs / common friends"},
      {"fig5_khop_cdfs", "Fig 5 — k-length path census"},
      {"fig7_sigma", "Fig 7 — sensitivity to sigma"},
      {"fig8_tau", "Fig 8 — sensitivity to tau"},
      {"fig9_dim", "Fig 9 — sensitivity to feature dimension d"},
      {"fig10_iterations", "Fig 10 — refinement iteration curve"},
      {"fig11_baselines", "Fig 11 — FriendSeeker vs baselines"},
      {"fig12_colocations", "Fig 12 — F1 by common-location count"},
      {"fig13_checkins", "Fig 13 — F1 by pair check-in volume"},
      {"fig14_hiding", "Fig 14 — hiding countermeasure"},
      {"fig15_ingrid", "Fig 15 — in-grid blurring countermeasure"},
      {"fig16_crossgrid", "Fig 16 — cross-grid blurring countermeasure"},
      {"ablation", "Design-choice ablations"},
      {"defense", "Extension — FriendGuard defense"},
  };
  return kTitles;
}

/// One section as JSON: {"stem", "title", "columns", "rows"}; numeric cells
/// are emitted as numbers so downstream tooling can plot without re-parsing.
fs::obs::json::Value section_json(
    const std::string& stem, const std::string& title,
    const std::vector<std::vector<std::string>>& rows) {
  namespace json = fs::obs::json;
  json::Object section;
  section["stem"] = stem;
  section["title"] = title;
  json::Array columns;
  if (!rows.empty())
    for (const std::string& cell : rows[0]) columns.emplace_back(cell);
  section["columns"] = std::move(columns);
  json::Array body;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    json::Array row;
    for (const std::string& cell : rows[r]) {
      bool numeric = false;
      double v = 0.0;
      try {
        std::size_t pos = 0;
        v = std::stod(cell, &pos);
        numeric = pos == cell.size() && !cell.empty();
      } catch (const std::exception&) {
      }
      if (numeric)
        row.emplace_back(v);
      else
        row.emplace_back(cell);
    }
    body.emplace_back(std::move(row));
  }
  section["rows"] = std::move(body);
  return json::Value(std::move(section));
}

}  // namespace

int main(int argc, char** argv) {
  fs::util::ArgParser args;
  args.add_option("dir", "bench_out", "directory holding the bench CSVs");
  args.add_option("out", "REPORT.md", "output Markdown file");
  args.add_option("json-out", "",
                  "also write the report as JSON (\"\" = <out stem>.json)");
  try {
    args.parse(argc, argv);
    const std::filesystem::path dir(args.get("dir"));
    if (!std::filesystem::is_directory(dir))
      throw std::runtime_error(dir.string() +
                               " not found — run the benches first");

    // Deterministic order: known artifacts first (in paper order), then
    // any extras alphabetically.
    std::vector<std::string> stems;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.path().extension() == ".csv")
        stems.push_back(entry.path().stem().string());
    std::vector<std::string> ordered;
    for (const auto& [stem, title] : titles())
      (void)title;  // map is sorted by stem; rebuild paper order below
    const char* paper_order[] = {
        "table1_stats", "table2_proportions", "fig1_cdfs", "fig5_khop_cdfs",
        "fig7_sigma", "fig8_tau", "fig9_dim", "fig10_iterations",
        "fig11_baselines", "fig12_colocations", "fig13_checkins",
        "fig14_hiding", "fig15_ingrid", "fig16_crossgrid", "ablation",
        "defense"};
    for (const char* stem : paper_order)
      if (std::find(stems.begin(), stems.end(), stem) != stems.end())
        ordered.push_back(stem);
    std::sort(stems.begin(), stems.end());
    for (const std::string& stem : stems)
      if (std::find(ordered.begin(), ordered.end(), stem) == ordered.end())
        ordered.push_back(stem);

    std::ofstream out(args.get("out"));
    if (!out) throw std::runtime_error("cannot write " + args.get("out"));
    out << "# FriendSeeker reproduction report\n\n"
        << "Generated from `" << dir.string()
        << "/` by `bench_report`. One section per reproduced paper "
           "artifact; see EXPERIMENTS.md for the paper-vs-measured "
           "discussion.\n";
    namespace json = fs::obs::json;
    json::Array sections;
    for (const std::string& stem : ordered) {
      const auto it = titles().find(stem);
      const std::string title = it != titles().end() ? it->second : stem;
      const auto rows = read_csv((dir / (stem + ".csv")).string());
      out << "\n## " << title << "\n\n";
      out << markdown_table(rows);
      sections.push_back(section_json(stem, title, rows));
    }

    std::string json_path = args.get("json-out");
    if (json_path.empty()) {
      const std::filesystem::path md(args.get("out"));
      json_path = (md.parent_path() / md.stem()).string() + ".json";
    }
    json::Object report;
    report["report"] = "friendseeker-bench";
    report["source_dir"] = dir.string();
    report["sections"] = std::move(sections);
    json::write_file(json_path, json::Value(std::move(report)), 2);
    std::cout << "wrote " << args.get("out") << " and " << json_path << " ("
              << ordered.size() << " sections)\n";
  } catch (const std::exception& e) {
    std::cerr << "bench_report: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
