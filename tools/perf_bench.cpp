// perf_bench — end-to-end pipeline performance harness. Runs FriendSeeker
// on a synthetic preset with the observability subsystem live, then writes
// a machine-readable BENCH_pipeline.json: per-stage wall/CPU rollups from
// the trace spans, peak working-set estimate, and attack quality, so CI can
// track performance as a trajectory instead of a log line.
//
//   perf_bench [--preset tiny|gowalla|brightkite] [--out BENCH_pipeline.json]
//              [--metrics-out M.json] [--trace-out T.json] [--seed N]
//              [--threads N] [--scaling 1,2,4,8] [--shards N]
//              [--blocking on|off|auto] [--universe sampled|full]
//              [--store-comparison on|off]
//   perf_bench --validate FILE    # schema-check an existing BENCH file
//
// --scaling re-runs the same attack once per listed thread count and emits
// a "scaling" section: wall time, speedup vs the first entry, and a digest
// of the run's outputs, so CI asserts byte-identity across thread counts in
// the same pass that tracks the speedup curve.
//
// --store-comparison on (the default) additionally round-trips the
// experiment's dataset through the columnar store and re-runs the attack
// in-memory, store-backed, and store-backed with 4 shards, emitting the
// "store_comparison" section (wall, peak memory, digest identity). The
// validator re-checks the shard-ownership invariant — per-shard scored +
// pruned sums to the universe — from the emitted JSON alone.
//
// Schema v5 adds two sections the validator enforces:
//   "kernel"       — the fs::kern ISA path the run executed on (active,
//                    requested via FS_KERNEL, and every supported path).
//   "knn_quantize" — a full re-run with the int8 KNN distance engine on,
//                    graded against the measured run's iteration-0
//                    (presence-only) decisions. recall@decision >= 0.99 is
//                    a schema invariant: a file from a regressed quantizer
//                    does not validate and never ships.
//
// --universe full extends the sampled test set with EVERY remaining user
// pair, the population an attacker actually faces; quality is still scored
// on the balanced subset (the extras have no labels to grade against).
// This is the regime candidate blocking exists for — the "blocking"
// section then shows the scored-universe shrinkage, and the "cache"
// section the phase-2 feature-cache hit rate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/loader.h"
#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "kern/kern.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "shard/sharded_candidates.h"
#include "store/convert.h"
#include "store/store.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace json = obs::json;

constexpr double kSchemaVersion = 5.0;

/// Runs the attack and grades the balanced test subset. Under --universe
/// full the test list carries unlabeled extension pairs after the labeled
/// prefix; they are predicted (that is the point) but not graded.
ml::Prf run_graded(eval::FriendSeekerAttack& attack,
                   const eval::Experiment& experiment) {
  obs::Span timer("eval.attack.run");
  const std::vector<int> predictions = attack.infer(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);
  const std::vector<int> graded(
      predictions.begin(),
      predictions.begin() +
          static_cast<std::ptrdiff_t>(experiment.split.test_labels.size()));
  return ml::prf(experiment.split.test_labels, graded);
}

/// Appends every user pair absent from the sampled split to the test list:
/// the full O(n^2) candidate universe an unconstrained attacker scores.
void extend_to_full_universe(eval::Experiment& experiment) {
  std::vector<data::UserPair> known;
  known.reserve(experiment.split.train_pairs.size() +
                experiment.split.test_pairs.size());
  for (const auto& p : experiment.split.train_pairs)
    known.push_back(data::make_pair_ordered(p.first, p.second));
  for (const auto& p : experiment.split.test_pairs)
    known.push_back(data::make_pair_ordered(p.first, p.second));
  std::sort(known.begin(), known.end());
  const auto n =
      static_cast<data::UserId>(experiment.dataset.user_count());
  for (data::UserId a = 0; a < n; ++a)
    for (data::UserId b = a + 1; b < n; ++b) {
      const data::UserPair pair{a, b};
      if (!std::binary_search(known.begin(), known.end(), pair))
        experiment.split.test_pairs.push_back(pair);
    }
}

std::vector<std::size_t> parse_scaling(const std::string& spec) {
  std::vector<std::size_t> threads;
  std::istringstream iss(spec);
  std::string token;
  while (std::getline(iss, token, ',')) {
    const unsigned long v = std::stoul(token);
    if (v == 0) throw std::invalid_argument("--scaling entries must be >= 1");
    threads.push_back(v);
  }
  if (threads.empty())
    throw std::invalid_argument("--scaling needs at least one thread count");
  return threads;
}

/// One "shards" array (from the measured run or a store_comparison entry):
/// every entry internally consistent (universe == scored + pruned) and the
/// shard universes summing to `expect_universe`. This is the ownership
/// invariant that makes sharded and monolithic runs score the same pair
/// population — re-checked here from the emitted JSON alone.
void validate_shards(const json::Array& shards, double expect_universe) {
  if (shards.empty()) throw ParseError("shards is empty");
  double universe_sum = 0.0;
  for (const json::Value& entry : shards) {
    for (const char* key :
         {"grid_lo", "grid_hi", "rows", "universe_pairs", "scored_pairs",
          "pruned_pairs", "cell_candidates", "wall_ms"})
      if (entry.at(key).as_number() < 0.0)
        throw ParseError(std::string("shard entry: negative ") + key);
    const double universe = entry.at("universe_pairs").as_number();
    if (entry.at("scored_pairs").as_number() +
            entry.at("pruned_pairs").as_number() !=
        universe)
      throw ParseError("shard entry: scored + pruned != universe");
    universe_sum += universe;
  }
  if (universe_sum != expect_universe)
    throw ParseError(
        "shards: per-shard universes do not sum to the blocking universe");
}

/// Checks one BENCH_pipeline.json against the schema this tool writes.
/// Throws ParseError with the offending key on any mismatch.
void validate_bench(const json::Value& root) {
  if (!root.is_object()) throw ParseError("root is not an object");
  if (root.at("schema_version").as_number() != kSchemaVersion)
    throw ParseError("schema_version != 5");
  root.at("preset").as_string();
  root.at("seed").as_number();
  if (root.at("threads").as_number() < 1.0)
    throw ParseError("threads < 1");
  if (root.at("host_hardware_threads").as_number() < 1.0)
    throw ParseError("host_hardware_threads < 1");
  root.at("result_digest").as_string();
  root.at("final_graph_digest").as_string();
  const std::string universe = root.at("universe").as_string();
  if (universe != "sampled" && universe != "full")
    throw ParseError("universe must be 'sampled' or 'full'");

  const json::Value& blocking = root.at("blocking");
  const std::string mode = blocking.at("mode").as_string();
  if (mode != "on" && mode != "off" && mode != "auto")
    throw ParseError("blocking.mode must be on, off, or auto");
  blocking.at("active").as_bool();
  const double universe_pairs = blocking.at("universe_pairs").as_number();
  const double scored_pairs = blocking.at("scored_pairs").as_number();
  const double pruned_pairs = blocking.at("pruned_pairs").as_number();
  if (universe_pairs < 0.0 || scored_pairs < 0.0 || pruned_pairs < 0.0)
    throw ParseError("blocking pair counts must be non-negative");
  if (scored_pairs + pruned_pairs != universe_pairs)
    throw ParseError("blocking: scored + pruned != universe");
  if (blocking.at("prune_ratio").as_number() < 1.0)
    throw ParseError("blocking.prune_ratio < 1");
  if (blocking.at("forced_train_pairs").as_number() < 0.0)
    throw ParseError("blocking.forced_train_pairs is negative");

  // The shards section is optional (absent when the measured run was
  // monolithic); when present its universes must sum to the blocking one.
  if (root.contains("shards"))
    validate_shards(root.at("shards").as_array(), universe_pairs);

  const json::Value& cache = root.at("cache");
  for (const char* key : {"hits", "misses", "bytes"})
    if (cache.at(key).as_number() < 0.0)
      throw ParseError(std::string("cache.") + key + " is negative");
  for (const char* key : {"hit_rate", "phase2_hit_rate"}) {
    const double v = cache.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("cache.") + key + " outside [0, 1]");
  }

  const json::Value& quality = root.at("quality");
  for (const char* key : {"f1", "precision", "recall"}) {
    const double v = quality.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("quality.") + key + " outside [0, 1]");
  }

  const json::Value& kernel = root.at("kernel");
  const std::string kernel_path = kernel.at("path").as_string();
  if (kernel_path != "scalar" && kernel_path != "avx2" &&
      kernel_path != "avx512")
    throw ParseError("kernel.path must be scalar, avx2, or avx512");
  kernel.at("requested").as_string();
  const json::Array& available = kernel.at("available").as_array();
  if (available.empty() || available.front().as_string() != "scalar")
    throw ParseError("kernel.available must start with scalar");
  bool active_listed = false;
  for (const json::Value& p : available)
    active_listed = active_listed || p.as_string() == kernel_path;
  if (!active_listed)
    throw ParseError("kernel.path is not in kernel.available");

  // The quantized-KNN contract: the int8 lower-bound engine must reproduce
  // at least 99% of the full-precision positive decisions at iteration 0,
  // and its work counters must be internally consistent.
  const json::Value& quant = root.at("knn_quantize");
  if (quant.at("decisions").as_number() < 1.0)
    throw ParseError("knn_quantize.decisions < 1");
  const double recall = quant.at("recall_at_decision").as_number();
  if (recall < 0.99 || recall > 1.0)
    throw ParseError(
        "knn_quantize.recall_at_decision violates the >= 0.99 contract");
  const double agreement = quant.at("decision_agreement").as_number();
  if (agreement < 0.0 || agreement > 1.0)
    throw ParseError("knn_quantize.decision_agreement outside [0, 1]");
  const double scanned = quant.at("rows_scanned").as_number();
  const double exact_evals = quant.at("exact_evals").as_number();
  if (scanned < 0.0 || exact_evals < 0.0 || exact_evals > scanned)
    throw ParseError(
        "knn_quantize.exact_evals outside [0, rows_scanned]");
  if (quant.at("prune_ratio").as_number() < 1.0)
    throw ParseError("knn_quantize.prune_ratio < 1");
  if (quant.at("wall_ms").as_number() < 0.0)
    throw ParseError("knn_quantize.wall_ms is negative");

  const json::Array& stages = root.at("stages").as_array();
  if (stages.empty()) throw ParseError("stages is empty");
  for (const json::Value& stage : stages) {
    stage.at("name").as_string();
    for (const char* key : {"count", "wall_ms", "cpu_ms", "throughput"})
      if (stage.at(key).as_number() < 0.0)
        throw ParseError(std::string("stage ") +
                         stage.at("name").as_string() + ": negative " + key);
  }

  if (root.at("totals").at("wall_ms").as_number() < 0.0)
    throw ParseError("totals.wall_ms is negative");
  if (root.at("peak_memory_bytes").as_number() < 0.0)
    throw ParseError("peak_memory_bytes is negative");

  // The scaling section is optional (absent when --scaling was not given).
  if (root.contains("scaling")) {
    const json::Array& scaling = root.at("scaling").as_array();
    if (scaling.empty()) throw ParseError("scaling is empty");
    for (const json::Value& entry : scaling) {
      if (entry.at("threads").as_number() < 1.0)
        throw ParseError("scaling entry: threads < 1");
      if (entry.at("wall_ms").as_number() < 0.0)
        throw ParseError("scaling entry: negative wall_ms");
      if (entry.at("speedup").as_number() < 0.0)
        throw ParseError("scaling entry: negative speedup");
      const double f1 = entry.at("f1").as_number();
      if (f1 < 0.0 || f1 > 1.0)
        throw ParseError("scaling entry: f1 outside [0, 1]");
      entry.at("result_digest").as_string();
      if (!entry.at("identical").as_bool())
        throw ParseError("scaling entry: results differ across thread "
                         "counts (determinism contract broken)");
    }
  }

  // The store comparison is optional as a whole, but "store" and
  // "store_comparison" only make sense together.
  if (root.contains("store") != root.contains("store_comparison"))
    throw ParseError("store and store_comparison must appear together");
  if (root.contains("store_comparison")) {
    const json::Value& store = root.at("store");
    store.at("path").as_string();
    for (const char* key : {"file_bytes", "rows", "convert_ms"})
      if (store.at(key).as_number() < 0.0)
        throw ParseError(std::string("store.") + key + " is negative");

    const json::Array& comparison = root.at("store_comparison").as_array();
    if (comparison.size() < 3)
      throw ParseError(
          "store_comparison needs in-memory, store, and sharded entries");
    for (const json::Value& entry : comparison) {
      entry.at("label").as_string();
      const std::string source = entry.at("source").as_string();
      if (source != "memory" && source != "store")
        throw ParseError(
            "store_comparison entry: source must be memory or store");
      if (entry.at("shard_count").as_number() < 0.0)
        throw ParseError("store_comparison entry: negative shard_count");
      if (entry.at("wall_ms").as_number() < 0.0)
        throw ParseError("store_comparison entry: negative wall_ms");
      if (entry.at("peak_memory_bytes").as_number() < 0.0)
        throw ParseError("store_comparison entry: negative peak_memory_bytes");
      const double f1 = entry.at("f1").as_number();
      if (f1 < 0.0 || f1 > 1.0)
        throw ParseError("store_comparison entry: f1 outside [0, 1]");
      entry.at("result_digest").as_string();
      if (!entry.at("identical").as_bool())
        throw ParseError("store_comparison entry: digest diverged from the "
                         "in-memory run (store round-trip broke identity)");
      if (entry.contains("shards"))
        validate_shards(entry.at("shards").as_array(),
                        entry.at("universe_pairs").as_number());
    }
  }
}

int run_validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_bench: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  try {
    validate_bench(json::parse(oss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s fails schema: %s\n", path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("%s: schema ok\n", path.c_str());
  return 0;
}

struct RunOutcome {
  double wall_ms = 0.0;
  ml::Prf prf;
  std::string digest;
  std::size_t peak = 0;
  std::size_t universe_pairs = 0;
  std::vector<shard::ShardRunStats> shards;
};

/// Serializes per-shard run stats as the schema-v4 "shards" array.
json::Array shard_section(const std::vector<shard::ShardRunStats>& stats) {
  json::Array shards;
  for (const shard::ShardRunStats& st : stats) {
    json::Object entry;
    entry["grid_lo"] = static_cast<std::size_t>(st.grid_lo);
    entry["grid_hi"] = static_cast<std::size_t>(st.grid_hi);
    entry["rows"] = static_cast<std::size_t>(st.rows);
    entry["universe_pairs"] = static_cast<std::size_t>(st.universe_pairs);
    entry["scored_pairs"] = static_cast<std::size_t>(st.scored_pairs);
    entry["pruned_pairs"] = static_cast<std::size_t>(st.pruned_pairs);
    entry["cell_candidates"] = static_cast<std::size_t>(st.cell_candidates);
    entry["wall_ms"] = st.wall_ms;
    shards.emplace_back(std::move(entry));
  }
  return shards;
}

RunOutcome run_attack_once(const eval::BenchPreset& preset,
                           const eval::Experiment& experiment,
                           std::size_t threads) {
  par::set_threads(threads);
  eval::BenchPreset run = preset;
  runtime::ExecutionContext context;
  run.seeker.context = &context;
  obs::Span span("perf_bench.run");
  eval::FriendSeekerAttack attack(run.seeker);
  RunOutcome outcome;
  outcome.prf = run_graded(attack, experiment);
  span.end();
  outcome.wall_ms = span.milliseconds();
  outcome.digest = eval::result_digest(attack.last_result());
  outcome.peak = context.peak_charged();
  outcome.universe_pairs = attack.last_result().blocking.universe_pairs;
  outcome.shards = attack.last_result().shards;
  return outcome;
}

int run_bench(const util::ArgParser& args) {
  obs::set_metrics_enabled(true);
  obs::tracer().enable();

  const std::string preset_name = args.get("preset");
  eval::BenchPreset preset = eval::bench_preset(preset_name);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  preset.world.seed += seed;
  preset.seeker.seed += seed;
  par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
  const std::size_t main_threads = par::threads();

  const std::string blocking_arg = args.get("blocking");
  if (blocking_arg == "on")
    preset.seeker.blocking.mode = block::BlockingMode::kOn;
  else if (blocking_arg == "off")
    preset.seeker.blocking.mode = block::BlockingMode::kOff;
  else if (blocking_arg == "auto")
    preset.seeker.blocking.mode = block::BlockingMode::kAuto;
  else
    throw std::invalid_argument("--blocking must be on, off, or auto");
  const std::string universe_arg = args.get("universe");
  if (universe_arg != "sampled" && universe_arg != "full")
    throw std::invalid_argument("--universe must be sampled or full");
  const int shards_arg = args.get_int("shards");
  if (shards_arg < 0)
    throw std::invalid_argument("--shards must be >= 0");
  preset.seeker.shards = static_cast<std::size_t>(shards_arg);
  const std::string store_compare_arg = args.get("store-comparison");
  if (store_compare_arg != "on" && store_compare_arg != "off")
    throw std::invalid_argument("--store-comparison must be on or off");

  runtime::ExecutionContext context;
  preset.seeker.context = &context;

  obs::Span total_span("perf_bench.total");
  eval::Experiment experiment =
      eval::make_experiment(preset.world, {}, 0.7, 7 + seed);
  if (universe_arg == "full") extend_to_full_universe(experiment);
  eval::FriendSeekerAttack attack(preset.seeker);
  const ml::Prf prf = run_graded(attack, experiment);
  total_span.end();
  const std::string main_digest = eval::result_digest(attack.last_result());

  // Per-stage rollup from the spans the pipeline recorded.
  json::Array stages;
  double total_cpu_ms = 0.0;
  for (const auto& [name, agg] : obs::tracer().aggregate()) {
    json::Object stage;
    stage["name"] = name;
    stage["count"] = agg.count;
    stage["wall_ms"] = agg.wall_ms;
    stage["cpu_ms"] = agg.cpu_ms;
    stage["throughput"] =
        agg.wall_ms > 0.0
            ? static_cast<double>(agg.count) * 1000.0 / agg.wall_ms
            : 0.0;
    stages.emplace_back(std::move(stage));
    if (name != "perf_bench.total") total_cpu_ms += agg.cpu_ms;
  }

  json::Object quality;
  quality["f1"] = prf.f1;
  quality["precision"] = prf.precision;
  quality["recall"] = prf.recall;

  json::Object totals;
  totals["wall_ms"] = total_span.milliseconds();
  totals["cpu_ms"] = total_cpu_ms;

  const core::FriendSeekerResult& last = attack.last_result();
  json::Object blocking;
  blocking["mode"] = blocking_arg;
  blocking["active"] = last.blocking_active;
  blocking["universe_pairs"] = last.blocking.universe_pairs;
  blocking["scored_pairs"] = last.blocking.scored_pairs;
  blocking["pruned_pairs"] = last.blocking.pruned_pairs;
  blocking["forced_train_pairs"] = last.blocking.forced_pairs;
  blocking["hop_candidates"] = last.blocking.hop_candidates;
  blocking["prune_ratio"] =
      last.blocking.scored_pairs > 0
          ? static_cast<double>(last.blocking.universe_pairs) /
                static_cast<double>(last.blocking.scored_pairs)
          : 1.0;

  json::Object cache;
  cache["hits"] = last.cache.hits();
  cache["misses"] = last.cache.misses();
  cache["hit_rate"] = last.cache.hit_rate();
  cache["phase2_hit_rate"] = last.phase2_cache_hit_rate;
  cache["bytes"] = last.cache.bytes;

  json::Object kernel;
  kernel["path"] = std::string(kern::path_name(kern::active_path()));
  kernel["requested"] = kern::requested_path().empty()
                            ? std::string("auto")
                            : kern::requested_path();
  {
    json::Array available;
    for (const kern::IsaPath p : kern::supported_paths())
      available.emplace_back(std::string(kern::path_name(p)));
    kernel["available"] = std::move(available);
  }

  json::Object root;
  root["schema_version"] = kSchemaVersion;
  root["preset"] = preset_name;
  root["seed"] = seed;
  root["users"] = preset.world.user_count;
  root["threads"] = main_threads;
  root["host_hardware_threads"] =
      std::max(1u, std::thread::hardware_concurrency());
  root["result_digest"] = main_digest;
  root["final_graph_digest"] = eval::graph_digest(last.final_graph);
  root["universe"] = universe_arg;
  root["kernel"] = std::move(kernel);
  root["blocking"] = std::move(blocking);
  root["cache"] = std::move(cache);
  root["quality"] = std::move(quality);
  root["stages"] = std::move(stages);
  root["totals"] = std::move(totals);
  root["peak_memory_bytes"] = context.peak_charged();
  if (!last.shards.empty()) root["shards"] = shard_section(last.shards);

  // Scaling sweep: one full re-run per requested thread count, after the
  // stage rollup above so its spans don't pollute the per-stage numbers.
  // Every run must reproduce the first run's digest bit for bit.
  if (!args.get("scaling").empty()) {
    json::Array scaling;
    std::string reference_digest;
    double reference_wall = 0.0;
    for (std::size_t threads : parse_scaling(args.get("scaling"))) {
      const RunOutcome outcome =
          run_attack_once(preset, experiment, threads);
      if (reference_digest.empty()) {
        reference_digest = outcome.digest;
        reference_wall = outcome.wall_ms;
      }
      json::Object entry;
      entry["threads"] = threads;
      entry["wall_ms"] = outcome.wall_ms;
      entry["speedup"] =
          outcome.wall_ms > 0.0 ? reference_wall / outcome.wall_ms : 0.0;
      entry["f1"] = outcome.prf.f1;
      entry["result_digest"] = outcome.digest;
      entry["identical"] = outcome.digest == reference_digest;
      std::printf("scaling: threads=%zu wall=%.0fms f1=%.4f digest=%s%s\n",
                  threads, outcome.wall_ms, outcome.prf.f1,
                  outcome.digest.c_str(),
                  outcome.digest == reference_digest ? "" : " MISMATCH");
      scaling.emplace_back(std::move(entry));
    }
    root["scaling"] = std::move(scaling);
    par::set_threads(main_threads);
  }

  // Quantized-KNN contract run: the same attack with the int8 distance
  // engine on, graded against the measured run's iteration-0 decisions
  // (the presence-only graph the quantizer actually influences). Runs
  // after the stage rollup so its spans stay out of the per-stage numbers.
  {
    obs::Counter& evals_counter = obs::metrics().counter(
        "ml.knn.quant.exact_evals_total", {},
        "rows surviving the int8 lower bound to exact rerank");
    obs::Counter& scanned_counter = obs::metrics().counter(
        "ml.knn.quant.rows_scanned_total", {},
        "candidate rows considered by the quantized KNN path");
    const std::uint64_t evals_before = evals_counter.value();
    const std::uint64_t scanned_before = scanned_counter.value();

    eval::BenchPreset quant_preset = preset;
    quant_preset.seeker.presence.knn_quantize = true;
    runtime::ExecutionContext quant_context;
    quant_preset.seeker.context = &quant_context;
    obs::Span quant_span("perf_bench.knn_quantize.run");
    eval::FriendSeekerAttack quant_attack(quant_preset.seeker);
    run_graded(quant_attack, experiment);
    quant_span.end();

    const core::FriendSeekerResult& full_run = attack.last_result();
    const core::FriendSeekerResult& quant_run = quant_attack.last_result();
    const std::vector<int>& full0 =
        full_run.iterations.empty() ? full_run.test_predictions
                                    : full_run.iterations.front()
                                          .test_predictions;
    const std::vector<int>& quant0 =
        quant_run.iterations.empty() ? quant_run.test_predictions
                                     : quant_run.iterations.front()
                                           .test_predictions;
    const std::size_t decisions = std::min(full0.size(), quant0.size());
    std::size_t agree = 0, positives = 0, recovered = 0;
    for (std::size_t i = 0; i < decisions; ++i) {
      agree += full0[i] == quant0[i];
      if (full0[i] != 0) {
        ++positives;
        recovered += quant0[i] != 0;
      }
    }
    const std::uint64_t exact_evals = evals_counter.value() - evals_before;
    const std::uint64_t rows_scanned =
        scanned_counter.value() - scanned_before;
    const double recall =
        positives > 0 ? static_cast<double>(recovered) /
                            static_cast<double>(positives)
                      : 1.0;

    json::Object quant;
    quant["decisions"] = decisions;
    quant["positives_full_precision"] = positives;
    quant["recall_at_decision"] = recall;
    quant["decision_agreement"] =
        decisions > 0
            ? static_cast<double>(agree) / static_cast<double>(decisions)
            : 1.0;
    quant["rows_scanned"] = static_cast<std::size_t>(rows_scanned);
    quant["exact_evals"] = static_cast<std::size_t>(exact_evals);
    quant["prune_ratio"] =
        exact_evals > 0 ? static_cast<double>(rows_scanned) /
                              static_cast<double>(exact_evals)
                        : 1.0;
    quant["wall_ms"] = quant_span.milliseconds();
    std::printf("knn-quantize: recall@decision=%.4f agreement=%.4f "
                "prune=%.1fx wall=%.0fms\n",
                recall,
                decisions > 0 ? static_cast<double>(agree) /
                                    static_cast<double>(decisions)
                              : 1.0,
                exact_evals > 0 ? static_cast<double>(rows_scanned) /
                                      static_cast<double>(exact_evals)
                                : 1.0,
                quant_span.milliseconds());
    root["knn_quantize"] = std::move(quant);
  }

  const std::string out_path = args.get("out");

  // Store comparison: round-trip the experiment's dataset through the
  // columnar store, then re-run the attack in-memory, store-backed, and
  // store-backed with 4 shards. Digest identity across all three modes is
  // part of the schema contract (validate_bench rejects divergence), so CI
  // tracks the out-of-core overhead in the same pass that proves the store
  // and shard paths change nothing about the answer.
  if (store_compare_arg == "on") {
    const std::string store_path = out_path + ".fsst";
    store::ConvertOptions convert_options;
    convert_options.sigma = preset.seeker.sigma;
    convert_options.tau_seconds = static_cast<geo::Timestamp>(
        preset.seeker.tau_days * static_cast<double>(geo::kSecondsPerDay));
    obs::Span convert_span("perf_bench.store.convert");
    const store::ConvertStats convert_stats = store::write_store(
        experiment.dataset, data::LoadReport{}, store_path, convert_options);
    convert_span.end();

    json::Object store_info;
    store_info["path"] = store_path;
    store_info["file_bytes"] = convert_stats.file_bytes;
    store_info["rows"] = convert_stats.rows;
    store_info["convert_ms"] = convert_span.milliseconds();

    json::Array comparison;
    const auto run_mode = [&](const char* label, bool from_store,
                              std::size_t shard_count) {
      eval::Experiment mode_experiment = experiment;
      std::size_t mapped_resident = 0;
      if (from_store) {
        const store::MappedStore mapped = store::MappedStore::open(store_path);
        mode_experiment.dataset = mapped.to_dataset();
        mapped_resident = mapped.resident_bytes();
        mapped.release_pages();
      }
      eval::BenchPreset mode_preset = preset;
      mode_preset.seeker.shards = shard_count;
      const RunOutcome outcome =
          run_attack_once(mode_preset, mode_experiment, main_threads);
      json::Object entry;
      entry["label"] = label;
      entry["source"] = from_store ? "store" : "memory";
      entry["shard_count"] = shard_count;
      entry["wall_ms"] = outcome.wall_ms;
      entry["peak_memory_bytes"] = outcome.peak + mapped_resident;
      entry["f1"] = outcome.prf.f1;
      entry["result_digest"] = outcome.digest;
      entry["identical"] = outcome.digest == main_digest;
      if (!outcome.shards.empty()) {
        entry["universe_pairs"] = outcome.universe_pairs;
        entry["shards"] = shard_section(outcome.shards);
      }
      std::printf("store-comparison: %-14s wall=%.0fms peak=%zu digest=%s%s\n",
                  label, outcome.wall_ms, outcome.peak + mapped_resident,
                  outcome.digest.c_str(),
                  outcome.digest == main_digest ? "" : " MISMATCH");
      comparison.emplace_back(std::move(entry));
    };
    run_mode("in-memory", false, 0);
    run_mode("store", true, 0);
    run_mode("store+4-shards", true, 4);
    root["store"] = std::move(store_info);
    root["store_comparison"] = std::move(comparison);
  }

  const json::Value bench(std::move(root));
  validate_bench(bench);  // never ship a file the validator would reject
  json::write_file(out_path, bench, 2);
  std::printf("wrote %s (preset=%s F1=%.4f wall=%.0fms)\n", out_path.c_str(),
              preset_name.c_str(), prf.f1, total_span.milliseconds());

  if (!args.get("metrics-out").empty())
    obs::write_metrics_files(obs::metrics(), args.get("metrics-out"));
  if (!args.get("trace-out").empty())
    obs::tracer().write_chrome_json(args.get("trace-out"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("preset", "gowalla", "tiny | gowalla | brightkite");
  args.add_option("out", "BENCH_pipeline.json", "benchmark output file");
  args.add_option("metrics-out", "",
                  "also write the metrics snapshot (JSON + .prom twin)");
  args.add_option("trace-out", "", "also write the Chrome trace JSON");
  args.add_option("seed", "0", "seed offset for world and model RNG");
  args.add_option("threads", "0",
                  "worker threads for the measured run (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_option("scaling", "",
                  "comma-separated thread counts (e.g. 1,2,4,8): re-run per "
                  "count and emit the scaling section with byte-identity "
                  "digests");
  args.add_option("shards", "0",
                  "quadtree shard count for the measured run (0 = monolithic; "
                  ">= 1 emits the per-shard stats section)");
  args.add_option("store-comparison", "on",
                  "re-run via the columnar store (in-memory vs store-backed "
                  "vs store+4-shards) and emit the store_comparison section: "
                  "on | off");
  args.add_option("blocking", "auto",
                  "candidate blocking for the measured run: on | off | auto");
  args.add_option("universe", "sampled",
                  "pair universe: sampled (balanced eval protocol) | full "
                  "(every user pair; quality still graded on the balanced "
                  "subset)");
  args.add_option("validate", "",
                  "schema-check FILE instead of running the benchmark");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::fputs(args.help().c_str(), stderr);
      return 0;
    }
    if (!args.get("validate").empty())
      return run_validate(args.get("validate"));
    util::set_log_level(util::LogLevel::kInfo);
    return run_bench(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s\n", e.what());
    return 1;
  }
}
