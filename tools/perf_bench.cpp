// perf_bench — end-to-end pipeline performance harness. Runs FriendSeeker
// on a synthetic preset with the observability subsystem live, then writes
// a machine-readable BENCH_pipeline.json: per-stage wall/CPU rollups from
// the trace spans, peak working-set estimate, and attack quality, so CI can
// track performance as a trajectory instead of a log line.
//
//   perf_bench [--preset tiny|gowalla|brightkite] [--out BENCH_pipeline.json]
//              [--metrics-out M.json] [--trace-out T.json] [--seed N]
//   perf_bench --validate FILE    # schema-check an existing BENCH file
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace json = obs::json;

constexpr double kSchemaVersion = 1.0;

/// World + seeker scaling per preset. "tiny" is sized for CI smoke runs
/// (seconds); the named presets match the bench suite's sweep scale.
struct Preset {
  data::SyntheticWorldConfig world;
  core::FriendSeekerConfig seeker;
};

Preset make_preset(const std::string& name) {
  Preset p;
  p.seeker = eval::default_seeker_config();
  if (name == "tiny") {
    p.world = data::gowalla_like();
    p.world.user_count = 72;
    p.world.poi_count = 200;
    p.world.weeks = 4;
    p.seeker.sigma = 40;
    p.seeker.presence.feature_dim = 32;
    p.seeker.presence.epochs = 6;
    p.seeker.presence.max_autoencoder_rows = 300;
    p.seeker.max_iterations = 3;
    p.seeker.max_svm_train_rows = 600;
    return p;
  }
  if (name == "gowalla" || name == "brightkite") {
    p.world = name == "gowalla" ? data::gowalla_like()
                                : data::brightkite_like();
    p.world.user_count = 320;
    p.world.poi_count = 900;
    p.world.weeks = 10;
    p.seeker.sigma = 120;
    p.seeker.presence.feature_dim = 48;
    p.seeker.presence.epochs = 10;
    p.seeker.presence.max_autoencoder_rows = 450;
    p.seeker.max_iterations = 5;
    p.seeker.max_svm_train_rows = 1200;
    return p;
  }
  throw std::invalid_argument("unknown preset '" + name +
                              "' (tiny | gowalla | brightkite)");
}

/// Checks one BENCH_pipeline.json against the schema this tool writes.
/// Throws ParseError with the offending key on any mismatch.
void validate_bench(const json::Value& root) {
  if (!root.is_object()) throw ParseError("root is not an object");
  if (root.at("schema_version").as_number() != kSchemaVersion)
    throw ParseError("schema_version != 1");
  root.at("preset").as_string();
  root.at("seed").as_number();

  const json::Value& quality = root.at("quality");
  for (const char* key : {"f1", "precision", "recall"}) {
    const double v = quality.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("quality.") + key + " outside [0, 1]");
  }

  const json::Array& stages = root.at("stages").as_array();
  if (stages.empty()) throw ParseError("stages is empty");
  for (const json::Value& stage : stages) {
    stage.at("name").as_string();
    for (const char* key : {"count", "wall_ms", "cpu_ms", "throughput"})
      if (stage.at(key).as_number() < 0.0)
        throw ParseError(std::string("stage ") +
                         stage.at("name").as_string() + ": negative " + key);
  }

  if (root.at("totals").at("wall_ms").as_number() < 0.0)
    throw ParseError("totals.wall_ms is negative");
  if (root.at("peak_memory_bytes").as_number() < 0.0)
    throw ParseError("peak_memory_bytes is negative");
}

int run_validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_bench: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  try {
    validate_bench(json::parse(oss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s fails schema: %s\n", path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("%s: schema ok\n", path.c_str());
  return 0;
}

int run_bench(const util::ArgParser& args) {
  obs::set_metrics_enabled(true);
  obs::tracer().enable();

  const std::string preset_name = args.get("preset");
  Preset preset = make_preset(preset_name);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  preset.world.seed += seed;
  preset.seeker.seed += seed;

  runtime::ExecutionContext context;
  preset.seeker.context = &context;

  obs::Span total_span("perf_bench.total");
  const eval::Experiment experiment =
      eval::make_experiment(preset.world, {}, 0.7, 7 + seed);
  eval::FriendSeekerAttack attack(preset.seeker);
  const ml::Prf prf = eval::run_attack(attack, experiment);
  total_span.end();

  // Per-stage rollup from the spans the pipeline recorded.
  json::Array stages;
  double total_cpu_ms = 0.0;
  for (const auto& [name, agg] : obs::tracer().aggregate()) {
    json::Object stage;
    stage["name"] = name;
    stage["count"] = agg.count;
    stage["wall_ms"] = agg.wall_ms;
    stage["cpu_ms"] = agg.cpu_ms;
    stage["throughput"] =
        agg.wall_ms > 0.0
            ? static_cast<double>(agg.count) * 1000.0 / agg.wall_ms
            : 0.0;
    stages.emplace_back(std::move(stage));
    if (name != "perf_bench.total") total_cpu_ms += agg.cpu_ms;
  }

  json::Object quality;
  quality["f1"] = prf.f1;
  quality["precision"] = prf.precision;
  quality["recall"] = prf.recall;

  json::Object totals;
  totals["wall_ms"] = total_span.milliseconds();
  totals["cpu_ms"] = total_cpu_ms;

  json::Object root;
  root["schema_version"] = kSchemaVersion;
  root["preset"] = preset_name;
  root["seed"] = seed;
  root["users"] = preset.world.user_count;
  root["quality"] = std::move(quality);
  root["stages"] = std::move(stages);
  root["totals"] = std::move(totals);
  root["peak_memory_bytes"] = context.peak_charged();

  const json::Value bench(std::move(root));
  validate_bench(bench);  // never ship a file the validator would reject
  const std::string out_path = args.get("out");
  json::write_file(out_path, bench, 2);
  std::printf("wrote %s (preset=%s F1=%.4f wall=%.0fms)\n", out_path.c_str(),
              preset_name.c_str(), prf.f1, total_span.milliseconds());

  if (!args.get("metrics-out").empty())
    obs::write_metrics_files(obs::metrics(), args.get("metrics-out"));
  if (!args.get("trace-out").empty())
    obs::tracer().write_chrome_json(args.get("trace-out"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("preset", "gowalla", "tiny | gowalla | brightkite");
  args.add_option("out", "BENCH_pipeline.json", "benchmark output file");
  args.add_option("metrics-out", "",
                  "also write the metrics snapshot (JSON + .prom twin)");
  args.add_option("trace-out", "", "also write the Chrome trace JSON");
  args.add_option("seed", "0", "seed offset for world and model RNG");
  args.add_option("validate", "",
                  "schema-check FILE instead of running the benchmark");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::fputs(args.help().c_str(), stderr);
      return 0;
    }
    if (!args.get("validate").empty())
      return run_validate(args.get("validate"));
    util::set_log_level(util::LogLevel::kInfo);
    return run_bench(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s\n", e.what());
    return 1;
  }
}
