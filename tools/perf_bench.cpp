// perf_bench — end-to-end pipeline performance harness. Runs FriendSeeker
// on a synthetic preset with the observability subsystem live, then writes
// a machine-readable BENCH_pipeline.json: per-stage wall/CPU rollups from
// the trace spans, peak working-set estimate, and attack quality, so CI can
// track performance as a trajectory instead of a log line.
//
//   perf_bench [--preset tiny|gowalla|brightkite] [--out BENCH_pipeline.json]
//              [--metrics-out M.json] [--trace-out T.json] [--seed N]
//              [--threads N] [--scaling 1,2,4,8]
//   perf_bench --validate FILE    # schema-check an existing BENCH file
//
// --scaling re-runs the same attack once per listed thread count and emits
// a "scaling" section: wall time, speedup vs the first entry, and a digest
// of the run's outputs, so CI asserts byte-identity across thread counts in
// the same pass that tracks the speedup curve.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace json = obs::json;

constexpr double kSchemaVersion = 2.0;

/// World + seeker scaling per preset. "tiny" is sized for CI smoke runs
/// (seconds); the named presets match the bench suite's sweep scale.
struct Preset {
  data::SyntheticWorldConfig world;
  core::FriendSeekerConfig seeker;
};

Preset make_preset(const std::string& name) {
  Preset p;
  p.seeker = eval::default_seeker_config();
  if (name == "tiny") {
    p.world = data::gowalla_like();
    p.world.user_count = 72;
    p.world.poi_count = 200;
    p.world.weeks = 4;
    p.seeker.sigma = 40;
    p.seeker.presence.feature_dim = 32;
    p.seeker.presence.epochs = 6;
    p.seeker.presence.max_autoencoder_rows = 300;
    p.seeker.max_iterations = 3;
    p.seeker.max_svm_train_rows = 600;
    return p;
  }
  if (name == "gowalla" || name == "brightkite") {
    p.world = name == "gowalla" ? data::gowalla_like()
                                : data::brightkite_like();
    p.world.user_count = 320;
    p.world.poi_count = 900;
    p.world.weeks = 10;
    p.seeker.sigma = 120;
    p.seeker.presence.feature_dim = 48;
    p.seeker.presence.epochs = 10;
    p.seeker.presence.max_autoencoder_rows = 450;
    p.seeker.max_iterations = 5;
    p.seeker.max_svm_train_rows = 1200;
    return p;
  }
  throw std::invalid_argument("unknown preset '" + name +
                              "' (tiny | gowalla | brightkite)");
}

/// FNV-1a over everything an attack run computes: per-pair predictions,
/// score bit patterns, and the final graph's adjacency. Two runs are
/// byte-identical iff their digests match.
std::string result_digest(const core::FriendSeekerResult& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (int p : result.test_predictions)
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(p)));
  for (double s : result.test_scores) {
    std::uint64_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    mix(bits);
  }
  const graph::Graph& g = result.final_graph;
  mix(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v)
    for (graph::NodeId w : g.neighbors(v))
      if (v < w) {
        mix(v);
        mix(w);
      }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::vector<std::size_t> parse_scaling(const std::string& spec) {
  std::vector<std::size_t> threads;
  std::istringstream iss(spec);
  std::string token;
  while (std::getline(iss, token, ',')) {
    const unsigned long v = std::stoul(token);
    if (v == 0) throw std::invalid_argument("--scaling entries must be >= 1");
    threads.push_back(v);
  }
  if (threads.empty())
    throw std::invalid_argument("--scaling needs at least one thread count");
  return threads;
}

/// Checks one BENCH_pipeline.json against the schema this tool writes.
/// Throws ParseError with the offending key on any mismatch.
void validate_bench(const json::Value& root) {
  if (!root.is_object()) throw ParseError("root is not an object");
  if (root.at("schema_version").as_number() != kSchemaVersion)
    throw ParseError("schema_version != 2");
  root.at("preset").as_string();
  root.at("seed").as_number();
  if (root.at("threads").as_number() < 1.0)
    throw ParseError("threads < 1");
  if (root.at("host_hardware_threads").as_number() < 1.0)
    throw ParseError("host_hardware_threads < 1");
  root.at("result_digest").as_string();

  const json::Value& quality = root.at("quality");
  for (const char* key : {"f1", "precision", "recall"}) {
    const double v = quality.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("quality.") + key + " outside [0, 1]");
  }

  const json::Array& stages = root.at("stages").as_array();
  if (stages.empty()) throw ParseError("stages is empty");
  for (const json::Value& stage : stages) {
    stage.at("name").as_string();
    for (const char* key : {"count", "wall_ms", "cpu_ms", "throughput"})
      if (stage.at(key).as_number() < 0.0)
        throw ParseError(std::string("stage ") +
                         stage.at("name").as_string() + ": negative " + key);
  }

  if (root.at("totals").at("wall_ms").as_number() < 0.0)
    throw ParseError("totals.wall_ms is negative");
  if (root.at("peak_memory_bytes").as_number() < 0.0)
    throw ParseError("peak_memory_bytes is negative");

  // The scaling section is optional (absent when --scaling was not given).
  if (root.contains("scaling")) {
    const json::Array& scaling = root.at("scaling").as_array();
    if (scaling.empty()) throw ParseError("scaling is empty");
    for (const json::Value& entry : scaling) {
      if (entry.at("threads").as_number() < 1.0)
        throw ParseError("scaling entry: threads < 1");
      if (entry.at("wall_ms").as_number() < 0.0)
        throw ParseError("scaling entry: negative wall_ms");
      if (entry.at("speedup").as_number() < 0.0)
        throw ParseError("scaling entry: negative speedup");
      const double f1 = entry.at("f1").as_number();
      if (f1 < 0.0 || f1 > 1.0)
        throw ParseError("scaling entry: f1 outside [0, 1]");
      entry.at("result_digest").as_string();
      if (!entry.at("identical").as_bool())
        throw ParseError("scaling entry: results differ across thread "
                         "counts (determinism contract broken)");
    }
  }
}

int run_validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_bench: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  try {
    validate_bench(json::parse(oss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s fails schema: %s\n", path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("%s: schema ok\n", path.c_str());
  return 0;
}

struct RunOutcome {
  double wall_ms = 0.0;
  ml::Prf prf;
  std::string digest;
  std::size_t peak = 0;
};

RunOutcome run_attack_once(const Preset& preset,
                           const eval::Experiment& experiment,
                           std::size_t threads) {
  par::set_threads(threads);
  Preset run = preset;
  runtime::ExecutionContext context;
  run.seeker.context = &context;
  obs::Span span("perf_bench.run");
  eval::FriendSeekerAttack attack(run.seeker);
  RunOutcome outcome;
  outcome.prf = eval::run_attack(attack, experiment);
  span.end();
  outcome.wall_ms = span.milliseconds();
  outcome.digest = result_digest(attack.last_result());
  outcome.peak = context.peak_charged();
  return outcome;
}

int run_bench(const util::ArgParser& args) {
  obs::set_metrics_enabled(true);
  obs::tracer().enable();

  const std::string preset_name = args.get("preset");
  Preset preset = make_preset(preset_name);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  preset.world.seed += seed;
  preset.seeker.seed += seed;
  par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
  const std::size_t main_threads = par::threads();

  runtime::ExecutionContext context;
  preset.seeker.context = &context;

  obs::Span total_span("perf_bench.total");
  const eval::Experiment experiment =
      eval::make_experiment(preset.world, {}, 0.7, 7 + seed);
  eval::FriendSeekerAttack attack(preset.seeker);
  const ml::Prf prf = eval::run_attack(attack, experiment);
  total_span.end();
  const std::string main_digest = result_digest(attack.last_result());

  // Per-stage rollup from the spans the pipeline recorded.
  json::Array stages;
  double total_cpu_ms = 0.0;
  for (const auto& [name, agg] : obs::tracer().aggregate()) {
    json::Object stage;
    stage["name"] = name;
    stage["count"] = agg.count;
    stage["wall_ms"] = agg.wall_ms;
    stage["cpu_ms"] = agg.cpu_ms;
    stage["throughput"] =
        agg.wall_ms > 0.0
            ? static_cast<double>(agg.count) * 1000.0 / agg.wall_ms
            : 0.0;
    stages.emplace_back(std::move(stage));
    if (name != "perf_bench.total") total_cpu_ms += agg.cpu_ms;
  }

  json::Object quality;
  quality["f1"] = prf.f1;
  quality["precision"] = prf.precision;
  quality["recall"] = prf.recall;

  json::Object totals;
  totals["wall_ms"] = total_span.milliseconds();
  totals["cpu_ms"] = total_cpu_ms;

  json::Object root;
  root["schema_version"] = kSchemaVersion;
  root["preset"] = preset_name;
  root["seed"] = seed;
  root["users"] = preset.world.user_count;
  root["threads"] = main_threads;
  root["host_hardware_threads"] =
      std::max(1u, std::thread::hardware_concurrency());
  root["result_digest"] = main_digest;
  root["quality"] = std::move(quality);
  root["stages"] = std::move(stages);
  root["totals"] = std::move(totals);
  root["peak_memory_bytes"] = context.peak_charged();

  // Scaling sweep: one full re-run per requested thread count, after the
  // stage rollup above so its spans don't pollute the per-stage numbers.
  // Every run must reproduce the first run's digest bit for bit.
  if (!args.get("scaling").empty()) {
    json::Array scaling;
    std::string reference_digest;
    double reference_wall = 0.0;
    for (std::size_t threads : parse_scaling(args.get("scaling"))) {
      const RunOutcome outcome =
          run_attack_once(preset, experiment, threads);
      if (reference_digest.empty()) {
        reference_digest = outcome.digest;
        reference_wall = outcome.wall_ms;
      }
      json::Object entry;
      entry["threads"] = threads;
      entry["wall_ms"] = outcome.wall_ms;
      entry["speedup"] =
          outcome.wall_ms > 0.0 ? reference_wall / outcome.wall_ms : 0.0;
      entry["f1"] = outcome.prf.f1;
      entry["result_digest"] = outcome.digest;
      entry["identical"] = outcome.digest == reference_digest;
      std::printf("scaling: threads=%zu wall=%.0fms f1=%.4f digest=%s%s\n",
                  threads, outcome.wall_ms, outcome.prf.f1,
                  outcome.digest.c_str(),
                  outcome.digest == reference_digest ? "" : " MISMATCH");
      scaling.emplace_back(std::move(entry));
    }
    root["scaling"] = std::move(scaling);
    par::set_threads(main_threads);
  }

  const json::Value bench(std::move(root));
  validate_bench(bench);  // never ship a file the validator would reject
  const std::string out_path = args.get("out");
  json::write_file(out_path, bench, 2);
  std::printf("wrote %s (preset=%s F1=%.4f wall=%.0fms)\n", out_path.c_str(),
              preset_name.c_str(), prf.f1, total_span.milliseconds());

  if (!args.get("metrics-out").empty())
    obs::write_metrics_files(obs::metrics(), args.get("metrics-out"));
  if (!args.get("trace-out").empty())
    obs::tracer().write_chrome_json(args.get("trace-out"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("preset", "gowalla", "tiny | gowalla | brightkite");
  args.add_option("out", "BENCH_pipeline.json", "benchmark output file");
  args.add_option("metrics-out", "",
                  "also write the metrics snapshot (JSON + .prom twin)");
  args.add_option("trace-out", "", "also write the Chrome trace JSON");
  args.add_option("seed", "0", "seed offset for world and model RNG");
  args.add_option("threads", "0",
                  "worker threads for the measured run (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_option("scaling", "",
                  "comma-separated thread counts (e.g. 1,2,4,8): re-run per "
                  "count and emit the scaling section with byte-identity "
                  "digests");
  args.add_option("validate", "",
                  "schema-check FILE instead of running the benchmark");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::fputs(args.help().c_str(), stderr);
      return 0;
    }
    if (!args.get("validate").empty())
      return run_validate(args.get("validate"));
    util::set_log_level(util::LogLevel::kInfo);
    return run_bench(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s\n", e.what());
    return 1;
  }
}
