// perf_bench — end-to-end pipeline performance harness. Runs FriendSeeker
// on a synthetic preset with the observability subsystem live, then writes
// a machine-readable BENCH_pipeline.json: per-stage wall/CPU rollups from
// the trace spans, peak working-set estimate, and attack quality, so CI can
// track performance as a trajectory instead of a log line.
//
//   perf_bench [--preset tiny|gowalla|brightkite] [--out BENCH_pipeline.json]
//              [--metrics-out M.json] [--trace-out T.json] [--seed N]
//              [--threads N] [--scaling 1,2,4,8]
//              [--blocking on|off|auto] [--universe sampled|full]
//   perf_bench --validate FILE    # schema-check an existing BENCH file
//
// --scaling re-runs the same attack once per listed thread count and emits
// a "scaling" section: wall time, speedup vs the first entry, and a digest
// of the run's outputs, so CI asserts byte-identity across thread counts in
// the same pass that tracks the speedup curve.
//
// --universe full extends the sampled test set with EVERY remaining user
// pair, the population an attacker actually faces; quality is still scored
// on the balanced subset (the extras have no labels to grade against).
// This is the regime candidate blocking exists for — the "blocking"
// section then shows the scored-universe shrinkage, and the "cache"
// section the phase-2 feature-cache hit rate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "par/pool.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace {

using namespace fs;
namespace json = obs::json;

constexpr double kSchemaVersion = 3.0;

/// Runs the attack and grades the balanced test subset. Under --universe
/// full the test list carries unlabeled extension pairs after the labeled
/// prefix; they are predicted (that is the point) but not graded.
ml::Prf run_graded(eval::FriendSeekerAttack& attack,
                   const eval::Experiment& experiment) {
  obs::Span timer("eval.attack.run");
  const std::vector<int> predictions = attack.infer(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);
  const std::vector<int> graded(
      predictions.begin(),
      predictions.begin() +
          static_cast<std::ptrdiff_t>(experiment.split.test_labels.size()));
  return ml::prf(experiment.split.test_labels, graded);
}

/// Appends every user pair absent from the sampled split to the test list:
/// the full O(n^2) candidate universe an unconstrained attacker scores.
void extend_to_full_universe(eval::Experiment& experiment) {
  std::vector<data::UserPair> known;
  known.reserve(experiment.split.train_pairs.size() +
                experiment.split.test_pairs.size());
  for (const auto& p : experiment.split.train_pairs)
    known.push_back(data::make_pair_ordered(p.first, p.second));
  for (const auto& p : experiment.split.test_pairs)
    known.push_back(data::make_pair_ordered(p.first, p.second));
  std::sort(known.begin(), known.end());
  const auto n =
      static_cast<data::UserId>(experiment.dataset.user_count());
  for (data::UserId a = 0; a < n; ++a)
    for (data::UserId b = a + 1; b < n; ++b) {
      const data::UserPair pair{a, b};
      if (!std::binary_search(known.begin(), known.end(), pair))
        experiment.split.test_pairs.push_back(pair);
    }
}

std::vector<std::size_t> parse_scaling(const std::string& spec) {
  std::vector<std::size_t> threads;
  std::istringstream iss(spec);
  std::string token;
  while (std::getline(iss, token, ',')) {
    const unsigned long v = std::stoul(token);
    if (v == 0) throw std::invalid_argument("--scaling entries must be >= 1");
    threads.push_back(v);
  }
  if (threads.empty())
    throw std::invalid_argument("--scaling needs at least one thread count");
  return threads;
}

/// Checks one BENCH_pipeline.json against the schema this tool writes.
/// Throws ParseError with the offending key on any mismatch.
void validate_bench(const json::Value& root) {
  if (!root.is_object()) throw ParseError("root is not an object");
  if (root.at("schema_version").as_number() != kSchemaVersion)
    throw ParseError("schema_version != 3");
  root.at("preset").as_string();
  root.at("seed").as_number();
  if (root.at("threads").as_number() < 1.0)
    throw ParseError("threads < 1");
  if (root.at("host_hardware_threads").as_number() < 1.0)
    throw ParseError("host_hardware_threads < 1");
  root.at("result_digest").as_string();
  root.at("final_graph_digest").as_string();
  const std::string universe = root.at("universe").as_string();
  if (universe != "sampled" && universe != "full")
    throw ParseError("universe must be 'sampled' or 'full'");

  const json::Value& blocking = root.at("blocking");
  const std::string mode = blocking.at("mode").as_string();
  if (mode != "on" && mode != "off" && mode != "auto")
    throw ParseError("blocking.mode must be on, off, or auto");
  blocking.at("active").as_bool();
  const double universe_pairs = blocking.at("universe_pairs").as_number();
  const double scored_pairs = blocking.at("scored_pairs").as_number();
  const double pruned_pairs = blocking.at("pruned_pairs").as_number();
  if (universe_pairs < 0.0 || scored_pairs < 0.0 || pruned_pairs < 0.0)
    throw ParseError("blocking pair counts must be non-negative");
  if (scored_pairs + pruned_pairs != universe_pairs)
    throw ParseError("blocking: scored + pruned != universe");
  if (blocking.at("prune_ratio").as_number() < 1.0)
    throw ParseError("blocking.prune_ratio < 1");
  if (blocking.at("forced_train_pairs").as_number() < 0.0)
    throw ParseError("blocking.forced_train_pairs is negative");

  const json::Value& cache = root.at("cache");
  for (const char* key : {"hits", "misses", "bytes"})
    if (cache.at(key).as_number() < 0.0)
      throw ParseError(std::string("cache.") + key + " is negative");
  for (const char* key : {"hit_rate", "phase2_hit_rate"}) {
    const double v = cache.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("cache.") + key + " outside [0, 1]");
  }

  const json::Value& quality = root.at("quality");
  for (const char* key : {"f1", "precision", "recall"}) {
    const double v = quality.at(key).as_number();
    if (v < 0.0 || v > 1.0)
      throw ParseError(std::string("quality.") + key + " outside [0, 1]");
  }

  const json::Array& stages = root.at("stages").as_array();
  if (stages.empty()) throw ParseError("stages is empty");
  for (const json::Value& stage : stages) {
    stage.at("name").as_string();
    for (const char* key : {"count", "wall_ms", "cpu_ms", "throughput"})
      if (stage.at(key).as_number() < 0.0)
        throw ParseError(std::string("stage ") +
                         stage.at("name").as_string() + ": negative " + key);
  }

  if (root.at("totals").at("wall_ms").as_number() < 0.0)
    throw ParseError("totals.wall_ms is negative");
  if (root.at("peak_memory_bytes").as_number() < 0.0)
    throw ParseError("peak_memory_bytes is negative");

  // The scaling section is optional (absent when --scaling was not given).
  if (root.contains("scaling")) {
    const json::Array& scaling = root.at("scaling").as_array();
    if (scaling.empty()) throw ParseError("scaling is empty");
    for (const json::Value& entry : scaling) {
      if (entry.at("threads").as_number() < 1.0)
        throw ParseError("scaling entry: threads < 1");
      if (entry.at("wall_ms").as_number() < 0.0)
        throw ParseError("scaling entry: negative wall_ms");
      if (entry.at("speedup").as_number() < 0.0)
        throw ParseError("scaling entry: negative speedup");
      const double f1 = entry.at("f1").as_number();
      if (f1 < 0.0 || f1 > 1.0)
        throw ParseError("scaling entry: f1 outside [0, 1]");
      entry.at("result_digest").as_string();
      if (!entry.at("identical").as_bool())
        throw ParseError("scaling entry: results differ across thread "
                         "counts (determinism contract broken)");
    }
  }
}

int run_validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_bench: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  try {
    validate_bench(json::parse(oss.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s fails schema: %s\n", path.c_str(),
                 e.what());
    return 1;
  }
  std::printf("%s: schema ok\n", path.c_str());
  return 0;
}

struct RunOutcome {
  double wall_ms = 0.0;
  ml::Prf prf;
  std::string digest;
  std::size_t peak = 0;
};

RunOutcome run_attack_once(const eval::BenchPreset& preset,
                           const eval::Experiment& experiment,
                           std::size_t threads) {
  par::set_threads(threads);
  eval::BenchPreset run = preset;
  runtime::ExecutionContext context;
  run.seeker.context = &context;
  obs::Span span("perf_bench.run");
  eval::FriendSeekerAttack attack(run.seeker);
  RunOutcome outcome;
  outcome.prf = run_graded(attack, experiment);
  span.end();
  outcome.wall_ms = span.milliseconds();
  outcome.digest = eval::result_digest(attack.last_result());
  outcome.peak = context.peak_charged();
  return outcome;
}

int run_bench(const util::ArgParser& args) {
  obs::set_metrics_enabled(true);
  obs::tracer().enable();

  const std::string preset_name = args.get("preset");
  eval::BenchPreset preset = eval::bench_preset(preset_name);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  preset.world.seed += seed;
  preset.seeker.seed += seed;
  par::set_threads(static_cast<std::size_t>(args.get_int("threads")));
  const std::size_t main_threads = par::threads();

  const std::string blocking_arg = args.get("blocking");
  if (blocking_arg == "on")
    preset.seeker.blocking.mode = block::BlockingMode::kOn;
  else if (blocking_arg == "off")
    preset.seeker.blocking.mode = block::BlockingMode::kOff;
  else if (blocking_arg == "auto")
    preset.seeker.blocking.mode = block::BlockingMode::kAuto;
  else
    throw std::invalid_argument("--blocking must be on, off, or auto");
  const std::string universe_arg = args.get("universe");
  if (universe_arg != "sampled" && universe_arg != "full")
    throw std::invalid_argument("--universe must be sampled or full");

  runtime::ExecutionContext context;
  preset.seeker.context = &context;

  obs::Span total_span("perf_bench.total");
  eval::Experiment experiment =
      eval::make_experiment(preset.world, {}, 0.7, 7 + seed);
  if (universe_arg == "full") extend_to_full_universe(experiment);
  eval::FriendSeekerAttack attack(preset.seeker);
  const ml::Prf prf = run_graded(attack, experiment);
  total_span.end();
  const std::string main_digest = eval::result_digest(attack.last_result());

  // Per-stage rollup from the spans the pipeline recorded.
  json::Array stages;
  double total_cpu_ms = 0.0;
  for (const auto& [name, agg] : obs::tracer().aggregate()) {
    json::Object stage;
    stage["name"] = name;
    stage["count"] = agg.count;
    stage["wall_ms"] = agg.wall_ms;
    stage["cpu_ms"] = agg.cpu_ms;
    stage["throughput"] =
        agg.wall_ms > 0.0
            ? static_cast<double>(agg.count) * 1000.0 / agg.wall_ms
            : 0.0;
    stages.emplace_back(std::move(stage));
    if (name != "perf_bench.total") total_cpu_ms += agg.cpu_ms;
  }

  json::Object quality;
  quality["f1"] = prf.f1;
  quality["precision"] = prf.precision;
  quality["recall"] = prf.recall;

  json::Object totals;
  totals["wall_ms"] = total_span.milliseconds();
  totals["cpu_ms"] = total_cpu_ms;

  const core::FriendSeekerResult& last = attack.last_result();
  json::Object blocking;
  blocking["mode"] = blocking_arg;
  blocking["active"] = last.blocking_active;
  blocking["universe_pairs"] = last.blocking.universe_pairs;
  blocking["scored_pairs"] = last.blocking.scored_pairs;
  blocking["pruned_pairs"] = last.blocking.pruned_pairs;
  blocking["forced_train_pairs"] = last.blocking.forced_pairs;
  blocking["hop_candidates"] = last.blocking.hop_candidates;
  blocking["prune_ratio"] =
      last.blocking.scored_pairs > 0
          ? static_cast<double>(last.blocking.universe_pairs) /
                static_cast<double>(last.blocking.scored_pairs)
          : 1.0;

  json::Object cache;
  cache["hits"] = last.cache.hits();
  cache["misses"] = last.cache.misses();
  cache["hit_rate"] = last.cache.hit_rate();
  cache["phase2_hit_rate"] = last.phase2_cache_hit_rate;
  cache["bytes"] = last.cache.bytes;

  json::Object root;
  root["schema_version"] = kSchemaVersion;
  root["preset"] = preset_name;
  root["seed"] = seed;
  root["users"] = preset.world.user_count;
  root["threads"] = main_threads;
  root["host_hardware_threads"] =
      std::max(1u, std::thread::hardware_concurrency());
  root["result_digest"] = main_digest;
  root["final_graph_digest"] = eval::graph_digest(last.final_graph);
  root["universe"] = universe_arg;
  root["blocking"] = std::move(blocking);
  root["cache"] = std::move(cache);
  root["quality"] = std::move(quality);
  root["stages"] = std::move(stages);
  root["totals"] = std::move(totals);
  root["peak_memory_bytes"] = context.peak_charged();

  // Scaling sweep: one full re-run per requested thread count, after the
  // stage rollup above so its spans don't pollute the per-stage numbers.
  // Every run must reproduce the first run's digest bit for bit.
  if (!args.get("scaling").empty()) {
    json::Array scaling;
    std::string reference_digest;
    double reference_wall = 0.0;
    for (std::size_t threads : parse_scaling(args.get("scaling"))) {
      const RunOutcome outcome =
          run_attack_once(preset, experiment, threads);
      if (reference_digest.empty()) {
        reference_digest = outcome.digest;
        reference_wall = outcome.wall_ms;
      }
      json::Object entry;
      entry["threads"] = threads;
      entry["wall_ms"] = outcome.wall_ms;
      entry["speedup"] =
          outcome.wall_ms > 0.0 ? reference_wall / outcome.wall_ms : 0.0;
      entry["f1"] = outcome.prf.f1;
      entry["result_digest"] = outcome.digest;
      entry["identical"] = outcome.digest == reference_digest;
      std::printf("scaling: threads=%zu wall=%.0fms f1=%.4f digest=%s%s\n",
                  threads, outcome.wall_ms, outcome.prf.f1,
                  outcome.digest.c_str(),
                  outcome.digest == reference_digest ? "" : " MISMATCH");
      scaling.emplace_back(std::move(entry));
    }
    root["scaling"] = std::move(scaling);
    par::set_threads(main_threads);
  }

  const json::Value bench(std::move(root));
  validate_bench(bench);  // never ship a file the validator would reject
  const std::string out_path = args.get("out");
  json::write_file(out_path, bench, 2);
  std::printf("wrote %s (preset=%s F1=%.4f wall=%.0fms)\n", out_path.c_str(),
              preset_name.c_str(), prf.f1, total_span.milliseconds());

  if (!args.get("metrics-out").empty())
    obs::write_metrics_files(obs::metrics(), args.get("metrics-out"));
  if (!args.get("trace-out").empty())
    obs::tracer().write_chrome_json(args.get("trace-out"));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args;
  args.add_option("preset", "gowalla", "tiny | gowalla | brightkite");
  args.add_option("out", "BENCH_pipeline.json", "benchmark output file");
  args.add_option("metrics-out", "",
                  "also write the metrics snapshot (JSON + .prom twin)");
  args.add_option("trace-out", "", "also write the Chrome trace JSON");
  args.add_option("seed", "0", "seed offset for world and model RNG");
  args.add_option("threads", "0",
                  "worker threads for the measured run (0 = FS_THREADS env "
                  "or hardware concurrency)");
  args.add_option("scaling", "",
                  "comma-separated thread counts (e.g. 1,2,4,8): re-run per "
                  "count and emit the scaling section with byte-identity "
                  "digests");
  args.add_option("blocking", "auto",
                  "candidate blocking for the measured run: on | off | auto");
  args.add_option("universe", "sampled",
                  "pair universe: sampled (balanced eval protocol) | full "
                  "(every user pair; quality still graded on the balanced "
                  "subset)");
  args.add_option("validate", "",
                  "schema-check FILE instead of running the benchmark");
  args.add_flag("help", "show options");
  try {
    args.parse(argc, argv);
    if (args.get_flag("help")) {
      std::fputs(args.help().c_str(), stderr);
      return 0;
    }
    if (!args.get("validate").empty())
      return run_validate(args.get("validate"));
    util::set_log_level(util::LogLevel::kInfo);
    return run_bench(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s\n", e.what());
    return 1;
  }
}
