// Fig 12: F1 as a function of the number of common locations (0..5),
// restricted to pairs with fewer than five common locations.
//
// Paper: learning-based attacks beat the knowledge-based one throughout;
// FriendSeeker beats the best baseline by ~10 % in every bucket; the
// co-location attack has no defined F1 at zero common locations (it can
// never predict a positive there). Shape to hold: same ordering, and
// FriendSeeker nonzero at bucket 0.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig12_colocations",
                "Fig 12 — F1 vs number of common locations");

  util::Table table({"dataset", "attack", "common locations", "F1",
                     "pairs in bucket"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment experiment = eval::make_experiment(base);
    const auto commons = eval::pair_common_locations(
        experiment.dataset, experiment.split.test_pairs);

    auto evaluate = [&](baselines::FriendshipAttack& attack) {
      const auto pred = attack.infer(
          experiment.dataset, experiment.split.train_pairs,
          experiment.split.train_labels, experiment.split.test_pairs);
      for (std::size_t bucket = 0; bucket <= 5; ++bucket) {
        std::vector<int> truth, guess;
        for (std::size_t i = 0; i < pred.size(); ++i) {
          if (commons[i] != bucket) continue;
          truth.push_back(experiment.split.test_labels[i]);
          guess.push_back(pred[i]);
        }
        const ml::Prf prf = ml::prf(truth, guess);
        table.new_row()
            .add(experiment.name)
            .add(attack.name())
            .add(bucket)
            .add(prf.f1, 4)
            .add(truth.size());
      }
    };

    eval::FriendSeekerAttack seeker(eval::default_seeker_config());
    evaluate(seeker);
    for (const auto& baseline : eval::make_baselines()) evaluate(*baseline);
  }

  bench::finish(table, "fig12_colocations",
                "Fig 12 — F1 by common-location count");
  std::printf(
      "expect: co-location F1 = 0 at bucket 0; friendseeker leads in every "
      "bucket\n");
  return 0;
}
