// Fig 15: F1 vs the proportion of in-grid blurred check-ins, 10-50 %.
//
// Paper: in-grid blurring (replacing a check-in's POI with another POI in
// the same grid) is the gentlest countermeasure — spatial-temporal cell
// counts barely move, so learning-based attacks retain most accuracy while
// knowledge-based ones (which depend on exact POI identity) fall hard.
#include "bench_common.h"

int main() {
  fs::bench::banner("bench_fig15_ingrid",
                    "Fig 15 — F1 vs proportion of in-grid blurred check-ins");
  fs::bench::run_obfuscation_bench("fig15_ingrid",
                                   "Fig 15 — in-grid blurring countermeasure",
                                   fs::scenario::DefenseMechanism::kBlurIn);
  return 0;
}
