// Fig 13: F1 as a function of the number of check-ins owned by a pair,
// plus the distribution of pair check-in counts.
//
// Paper: all attacks improve with more check-ins; FriendSeeker performs
// best in every band, including the sparsest one (it discovers 29.6 % of
// friends with < 25 check-ins). Shape to hold: monotone-ish growth with
// check-in volume and FriendSeeker on top in the sparse band.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig13_checkins",
                "Fig 13 — F1 vs check-ins owned by a pair");

  struct Band {
    const char* label;
    std::size_t lo;
    std::size_t hi;  // exclusive
  };
  const Band bands[] = {{"<25", 0, 25},
                        {"25-50", 25, 50},
                        {"50-100", 50, 100},
                        {"100-200", 100, 200},
                        {">=200", 200, static_cast<std::size_t>(-1)}};

  util::Table table({"dataset", "attack", "checkins band", "F1",
                     "pairs in band", "band share %"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment experiment = eval::make_experiment(base);
    const auto counts = eval::pair_checkin_counts(
        experiment.dataset, experiment.split.test_pairs);
    const auto total = static_cast<double>(counts.size());

    auto evaluate = [&](baselines::FriendshipAttack& attack) {
      const auto pred = attack.infer(
          experiment.dataset, experiment.split.train_pairs,
          experiment.split.train_labels, experiment.split.test_pairs);
      for (const Band& band : bands) {
        std::vector<int> truth, guess;
        for (std::size_t i = 0; i < pred.size(); ++i) {
          if (counts[i] < band.lo || counts[i] >= band.hi) continue;
          truth.push_back(experiment.split.test_labels[i]);
          guess.push_back(pred[i]);
        }
        const ml::Prf prf = ml::prf(truth, guess);
        table.new_row()
            .add(experiment.name)
            .add(attack.name())
            .add(band.label)
            .add(prf.f1, 4)
            .add(truth.size())
            .add(100.0 * static_cast<double>(truth.size()) / total, 1);
      }
    };

    eval::FriendSeekerAttack seeker(eval::default_seeker_config());
    evaluate(seeker);
    for (const auto& baseline : eval::make_baselines()) evaluate(*baseline);
  }

  bench::finish(table, "fig13_checkins", "Fig 13 — F1 by check-in volume");
  std::printf(
      "expect: F1 grows with check-in volume; friendseeker best in the "
      "sparse (<25) band\n");
  return 0;
}
