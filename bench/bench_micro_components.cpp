// Component micro-benchmarks (google-benchmark): throughput of the pieces
// on the attack's hot path — quadtree construction and lookup, JOC
// construction, k-hop subgraph extraction, autoencoder training epochs,
// SVM fit/decision, and skip-gram training.
#include <benchmark/benchmark.h>

#include "core/joc.h"
#include "data/synthetic.h"
#include "embed/skipgram.h"
#include "geo/quadtree.h"
#include "geo/spatial_division.h"
#include "graph/generators.h"
#include "graph/khop.h"
#include "ml/svm.h"
#include "nn/supervised_autoencoder.h"

namespace {

using namespace fs;

const data::SyntheticWorld& shared_world() {
  static const data::SyntheticWorld world = [] {
    data::SyntheticWorldConfig cfg;
    cfg.user_count = 300;
    cfg.poi_count = 900;
    cfg.weeks = 8;
    cfg.seed = 404;
    return data::generate_world(cfg);
  }();
  return world;
}

void BM_QuadtreeBuild(benchmark::State& state) {
  const auto coords = shared_world().dataset.poi_coordinates();
  const auto sigma = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    geo::QuadtreeDivision division(coords, sigma);
    benchmark::DoNotOptimize(division.cell_count());
  }
}
BENCHMARK(BM_QuadtreeBuild)->Arg(60)->Arg(120)->Arg(300);

void BM_QuadtreeLookup(benchmark::State& state) {
  const auto coords = shared_world().dataset.poi_coordinates();
  const geo::QuadtreeDivision division(coords, 120);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(division.cell_of(coords[i % coords.size()]));
    ++i;
  }
}
BENCHMARK(BM_QuadtreeLookup);

void BM_OccupancyIndexBuild(benchmark::State& state) {
  const auto& world = shared_world();
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 120);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(world.dataset.window_begin(),
                                world.dataset.window_end(),
                                7 * geo::kSecondsPerDay);
  for (auto _ : state) {
    core::OccupancyIndex index(world.dataset, view, slots);
    benchmark::DoNotOptimize(index.joc_dim());
  }
}
BENCHMARK(BM_OccupancyIndexBuild);

void BM_JocBuild(benchmark::State& state) {
  const auto& world = shared_world();
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 120);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(world.dataset.window_begin(),
                                world.dataset.window_end(),
                                7 * geo::kSecondsPerDay);
  const core::OccupancyIndex index(world.dataset, view, slots);
  std::vector<double> joc(index.joc_dim());
  data::UserId a = 0;
  for (auto _ : state) {
    core::build_joc(index, a, (a + 7) % 300, joc.data());
    benchmark::DoNotOptimize(joc.data());
    a = (a + 1) % 300;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JocBuild);

void BM_KHopExtraction(benchmark::State& state) {
  util::Rng rng(11);
  const graph::Graph g = graph::watts_strogatz(500, 8, 0.2, rng);
  graph::KHopOptions options;
  options.k = static_cast<int>(state.range(0));
  graph::NodeId a = 0;
  for (auto _ : state) {
    const auto sub = graph::extract_khop_subgraph(
        g, a, (a + 250) % 500, options);
    benchmark::DoNotOptimize(sub.path_count());
    a = (a + 1) % 500;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KHopExtraction)->Arg(2)->Arg(3)->Arg(4);

void BM_AutoencoderEpoch(benchmark::State& state) {
  util::Rng rng(13);
  const std::size_t input_dim = 360;
  nn::Matrix x(256, input_dim);
  std::vector<int> y(256);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = rng.uniform() < 0.1 ? rng.uniform() : 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
  for (auto _ : state) {
    nn::AutoencoderConfig cfg;
    cfg.encoder_dims = {input_dim, 180, 48};
    cfg.epochs = 1;
    nn::SupervisedAutoencoder ae(cfg);
    ae.train(x, y);
    benchmark::DoNotOptimize(ae.code_dim());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AutoencoderEpoch);

void BM_SvmFit(benchmark::State& state) {
  util::Rng rng(17);
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Matrix x(n, 32);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < 32; ++c)
      x(i, c) = rng.normal(y[i] ? 1.0 : -1.0, 1.0);
  }
  for (auto _ : state) {
    ml::SvmClassifier svm;
    svm.fit(x, y);
    benchmark::DoNotOptimize(svm.support_vector_count());
  }
}
BENCHMARK(BM_SvmFit)->Arg(200)->Arg(500)->Arg(1000);

void BM_SvmDecision(benchmark::State& state) {
  util::Rng rng(19);
  nn::Matrix x(500, 32);
  std::vector<int> y(500);
  for (std::size_t i = 0; i < 500; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < 32; ++c)
      x(i, c) = rng.normal(y[i] ? 1.0 : -1.0, 1.0);
  }
  ml::SvmClassifier svm;
  svm.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svm.decision(x.row(i % 500)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvmDecision);

void BM_SkipGramTraining(benchmark::State& state) {
  util::Rng rng(23);
  const graph::Graph social = graph::watts_strogatz(300, 6, 0.2, rng);
  embed::WeightedGraph g(300);
  for (const graph::Edge& e : social.edges()) g.add_weight(e.a, e.b, 1.0);
  embed::WalkConfig wc;
  wc.walks_per_node = 4;
  wc.walk_length = 12;
  const auto corpus = embed::generate_walks(g, wc, rng);
  for (auto _ : state) {
    embed::SkipGramConfig sg;
    sg.dim = 32;
    sg.epochs = 1;
    const nn::Matrix emb = embed::train_skipgram(corpus, 300, sg);
    benchmark::DoNotOptimize(emb.rows());
  }
}
BENCHMARK(BM_SkipGramTraining);

}  // namespace

BENCHMARK_MAIN();
