// Fig 5: CDFs of the number of length-k paths between friends and
// non-friends, k = 2..5, on the ground-truth social graph.
//
// Paper finding: for k <= 3 the distributions differ sharply (friends have
// more short paths); for k > 3 the difference collapses — small-world
// structure links even strangers by short chains — which is why k = 3 is
// the paper's operating point.
#include "bench_common.h"

#include "data/stats.h"
#include "eval/pairs.h"
#include "graph/khop.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig5_khop_cdfs",
                "Fig 5 — CDFs of #k-length paths, k = 2..5");

  util::Table table({"dataset", "k", "population", "mean paths",
                     "P(count=0)", "P(count<=2)", "P(count<=5)",
                     "friend/nonfriend mean ratio"});

  for (const auto& world_cfg : bench::paper_worlds()) {
    const data::SyntheticWorld world = data::generate_world(world_cfg);
    const eval::LabeledPairs pairs =
        eval::sample_candidate_pairs(world.dataset);
    const graph::Graph& g = world.dataset.friendships();

    graph::KHopOptions options;
    options.k = 5;
    // Count paths per pair once at k = 5, bucketing by length.
    std::vector<std::vector<std::size_t>> friend_counts(4),
        stranger_counts(4);
    for (std::size_t i = 0; i < pairs.pairs.size(); ++i) {
      const auto [a, b] = pairs.pairs[i];
      const auto counts = graph::khop_path_counts(g, a, b, options);
      for (int len = 2; len <= 5; ++len) {
        auto& bucket = (pairs.labels[i] ? friend_counts
                                        : stranger_counts)[len - 2];
        bucket.push_back(counts[static_cast<std::size_t>(len - 2)]);
      }
    }

    for (int len = 2; len <= 5; ++len) {
      auto mean = [](const std::vector<std::size_t>& v) {
        double total = 0.0;
        for (std::size_t x : v) total += static_cast<double>(x);
        return v.empty() ? 0.0 : total / static_cast<double>(v.size());
      };
      const auto& fc = friend_counts[len - 2];
      const auto& sc = stranger_counts[len - 2];
      const data::CountCdf friend_cdf(fc), stranger_cdf(sc);
      const double ratio =
          mean(sc) > 0 ? mean(fc) / mean(sc) : mean(fc) > 0 ? 99.0 : 1.0;
      table.new_row()
          .add(world_cfg.name)
          .add(len)
          .add("friends")
          .add(mean(fc), 3)
          .add(friend_cdf.at(0), 3)
          .add(friend_cdf.at(2), 3)
          .add(friend_cdf.at(5), 3)
          .add(ratio, 2);
      table.new_row()
          .add(world_cfg.name)
          .add(len)
          .add("non-friends")
          .add(mean(sc), 3)
          .add(stranger_cdf.at(0), 3)
          .add(stranger_cdf.at(2), 3)
          .add(stranger_cdf.at(5), 3)
          .add(1.0, 2);
    }
  }

  bench::finish(table, "fig5_khop_cdfs", "Fig 5 — k-length path census");
  std::printf(
      "expect: friend/non-friend mean ratio largest at k=2..3, shrinking "
      "toward 1 as k grows\n");
  return 0;
}
