// Fig 8: attack performance as a function of the time-slot length tau.
//
// Paper: tau is swept 1..60 days; F1 peaks at tau = 7 days on both
// datasets — human activity is weekly-periodic — and tau matters more than
// sigma. Shape to hold: the 7-day slot is at or near the maximum.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig8_tau", "Fig 8 — F1/recall/precision vs tau");

  const double taus[] = {1, 7, 14, 21, 28, 42, 60};
  util::Table table(
      {"dataset", "tau_days", "F1", "precision", "recall", "seconds"});

  constexpr int kSeeds = 2;
  for (const auto& base : bench::paper_worlds()) {
    const data::SyntheticWorldConfig world = bench::sweep_world(base);
    for (double tau : taus) {
      core::FriendSeekerConfig cfg = bench::sweep_seeker_config();
      cfg.tau_days = tau;
      obs::Span timer("bench.fig8_tau.point");
      const ml::Prf prf = bench::averaged_run(world, cfg, kSeeds);
      table.new_row()
          .add(world.name)
          .add(tau, 0)
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(timer.seconds(), 1);
    }
  }

  bench::finish(table, "fig8_tau", "Fig 8 — tau sensitivity");
  std::printf("expect: F1 maximal at (or adjacent to) tau = 7 days\n");
  return 0;
}
