// Shared support for the experiment benches (one binary per paper
// table/figure). Each bench prints the reproduced artifact as an aligned
// table and writes the same rows to bench_out/<name>.csv.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "obs/trace.h"
#include "scenario/config.h"
#include "scenario/runner.h"
#include "util/logging.h"
#include "util/table.h"

namespace fs::bench {

/// Where benches drop their CSVs (relative to the working directory).
inline std::string out_path(const std::string& name) {
  return "bench_out/" + name + ".csv";
}

/// The two full-scale synthetic worlds (matching the paper's two datasets).
inline std::vector<data::SyntheticWorldConfig> paper_worlds() {
  return {data::gowalla_like(), data::brightkite_like()};
}

/// Reduced worlds for parameter sweeps and obfuscation grids, where a full
/// pipeline runs dozens of times. Statistical shape is preserved; absolute
/// F1 shifts slightly.
inline data::SyntheticWorldConfig sweep_world(
    const data::SyntheticWorldConfig& base) {
  data::SyntheticWorldConfig cfg = base;
  cfg.user_count = 320;
  cfg.poi_count = 900;
  cfg.weeks = 10;
  return cfg;
}

/// FriendSeeker configuration for sweep benches: fewer epochs / smaller
/// caps so a single run stays under ~10 s.
inline core::FriendSeekerConfig sweep_seeker_config() {
  core::FriendSeekerConfig cfg = eval::default_seeker_config();
  cfg.sigma = 120;  // scaled to the smaller POI universe
  cfg.presence.feature_dim = 48;
  cfg.presence.epochs = 10;
  cfg.presence.max_autoencoder_rows = 450;
  cfg.max_iterations = 5;
  cfg.max_svm_train_rows = 1200;
  return cfg;
}

/// Runs one attack on one experiment, returning test metrics.
inline ml::Prf run(baselines::FriendshipAttack& attack,
                   const eval::Experiment& experiment) {
  return eval::run_attack(attack, experiment);
}

/// Runs FriendSeeker at one sweep point averaged over `seeds` independent
/// replicas (fresh world, split, and model initialization per replica) —
/// single-replica F1 at this scale carries ±0.02 noise, which would bury
/// the sensitivity shapes of Figs 7-9.
inline ml::Prf averaged_run(const data::SyntheticWorldConfig& world_base,
                            const core::FriendSeekerConfig& seeker_base,
                            int seeds) {
  ml::Prf mean;
  for (int s = 0; s < seeds; ++s) {
    data::SyntheticWorldConfig world_cfg = world_base;
    world_cfg.seed = world_base.seed + static_cast<std::uint64_t>(s) * 101;
    const eval::Experiment experiment = eval::make_experiment(
        world_cfg, {}, 0.7, 7 + static_cast<std::uint64_t>(s));
    core::FriendSeekerConfig cfg = seeker_base;
    cfg.seed = seeker_base.seed + static_cast<std::uint64_t>(s) * 31;
    eval::FriendSeekerAttack attack(cfg);
    const ml::Prf prf = eval::run_attack(attack, experiment);
    mean.f1 += prf.f1;
    mean.precision += prf.precision;
    mean.recall += prf.recall;
  }
  mean.f1 /= seeds;
  mean.precision /= seeds;
  mean.recall /= seeds;
  return mean;
}

/// Banner printed at the top of every bench.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Standard footer: write the CSV and tell the user where it went.
inline void finish(const util::Table& table, const std::string& name,
                   const std::string& title) {
  table.print(title);
  table.write_csv(out_path(name));
  std::printf("csv: %s\n", out_path(name).c_str());
}

/// The scenario-runner coordinate shared by the countermeasure benches
/// (Figs 14-16): both paper worlds x one mechanism swept 10-50 %.
inline scenario::ScenarioConfig obfuscation_scenario(
    const std::string& bench_name, scenario::DefenseMechanism mechanism) {
  scenario::ScenarioConfig config;
  config.name = bench_name;
  for (const char* preset : {"gowalla", "brightkite"}) {
    scenario::WorldSpec world;
    world.preset = preset;
    config.worlds.push_back(world);
  }
  for (double ratio : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    scenario::DefenseSpec defense;
    defense.mechanism = mechanism;
    defense.rate = ratio;
    config.defenses.push_back(defense);
  }
  config.attacks.push_back(scenario::AttackSpec{});
  config.models.push_back(scenario::ModelSpec{});
  config.dynamics.push_back(scenario::DynamicsSpec{});
  return config;
}

/// Shared driver for the three countermeasure benches (Figs 14-16), built
/// on the scenario runner: one declarative grid produces every FriendSeeker
/// row (with cross-cell world + feature-cache reuse), and the baselines are
/// graded on the IDENTICAL perturbed datasets, rebuilt through the runner's
/// public resolution helpers (same defense seed, same pair split).
inline void run_obfuscation_bench(const std::string& bench_name,
                                  const std::string& title,
                                  scenario::DefenseMechanism mechanism) {
  util::Table table(
      {"dataset", "ratio %", "attack", "F1", "precision", "recall"});

  const scenario::ScenarioConfig config =
      obfuscation_scenario(bench_name, mechanism);
  const scenario::MatrixResult matrix = scenario::run_scenario(config);

  std::size_t cell_index = 0;
  for (const scenario::WorldSpec& world : config.worlds) {
    const std::string world_key = scenario::world_label(world);
    const eval::Experiment clean = eval::make_experiment(
        scenario::resolve_world(world, config.seed), {}, 0.7,
        scenario::split_seed(config.seed));
    for (const scenario::DefenseSpec& defense : config.defenses) {
      const scenario::CellResult& cell = matrix.cells.at(cell_index++);
      table.new_row()
          .add(world_key)
          .add(defense.rate * 100, 0)
          .add("friendseeker")
          .add(cell.quality.f1, 4)
          .add(cell.quality.precision, 4)
          .add(cell.quality.recall, 4);

      eval::Experiment perturbed;
      perturbed.dataset = scenario::apply_defense(
          clean.dataset, defense,
          scenario::defense_seed(config.seed, world_key,
                                 scenario::defense_label(defense)));
      perturbed.split = clean.split;
      perturbed.name = clean.name;
      for (const auto& baseline : eval::make_baselines()) {
        const ml::Prf prf = eval::run_attack(*baseline, perturbed);
        table.new_row()
            .add(world_key)
            .add(defense.rate * 100, 0)
            .add(baseline->name())
            .add(prf.f1, 4)
            .add(prf.precision, 4)
            .add(prf.recall, 4);
      }
    }
  }

  finish(table, bench_name, title);
  std::printf(
      "expect: all attacks degrade with ratio; knowledge-based attacks "
      "collapse while friendseeker degrades most gracefully and leads at "
      "every ratio\n");
}


}  // namespace fs::bench
