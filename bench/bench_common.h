// Shared support for the experiment benches (one binary per paper
// table/figure). Each bench prints the reproduced artifact as an aligned
// table and writes the same rows to bench_out/<name>.csv.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/table.h"

namespace fs::bench {

/// Where benches drop their CSVs (relative to the working directory).
inline std::string out_path(const std::string& name) {
  return "bench_out/" + name + ".csv";
}

/// The two full-scale synthetic worlds (matching the paper's two datasets).
inline std::vector<data::SyntheticWorldConfig> paper_worlds() {
  return {data::gowalla_like(), data::brightkite_like()};
}

/// Reduced worlds for parameter sweeps and obfuscation grids, where a full
/// pipeline runs dozens of times. Statistical shape is preserved; absolute
/// F1 shifts slightly.
inline data::SyntheticWorldConfig sweep_world(
    const data::SyntheticWorldConfig& base) {
  data::SyntheticWorldConfig cfg = base;
  cfg.user_count = 320;
  cfg.poi_count = 900;
  cfg.weeks = 10;
  return cfg;
}

/// FriendSeeker configuration for sweep benches: fewer epochs / smaller
/// caps so a single run stays under ~10 s.
inline core::FriendSeekerConfig sweep_seeker_config() {
  core::FriendSeekerConfig cfg = eval::default_seeker_config();
  cfg.sigma = 120;  // scaled to the smaller POI universe
  cfg.presence.feature_dim = 48;
  cfg.presence.epochs = 10;
  cfg.presence.max_autoencoder_rows = 450;
  cfg.max_iterations = 5;
  cfg.max_svm_train_rows = 1200;
  return cfg;
}

/// Runs one attack on one experiment, returning test metrics.
inline ml::Prf run(baselines::FriendshipAttack& attack,
                   const eval::Experiment& experiment) {
  return eval::run_attack(attack, experiment);
}

/// Runs FriendSeeker at one sweep point averaged over `seeds` independent
/// replicas (fresh world, split, and model initialization per replica) —
/// single-replica F1 at this scale carries ±0.02 noise, which would bury
/// the sensitivity shapes of Figs 7-9.
inline ml::Prf averaged_run(const data::SyntheticWorldConfig& world_base,
                            const core::FriendSeekerConfig& seeker_base,
                            int seeds) {
  ml::Prf mean;
  for (int s = 0; s < seeds; ++s) {
    data::SyntheticWorldConfig world_cfg = world_base;
    world_cfg.seed = world_base.seed + static_cast<std::uint64_t>(s) * 101;
    const eval::Experiment experiment = eval::make_experiment(
        world_cfg, {}, 0.7, 7 + static_cast<std::uint64_t>(s));
    core::FriendSeekerConfig cfg = seeker_base;
    cfg.seed = seeker_base.seed + static_cast<std::uint64_t>(s) * 31;
    eval::FriendSeekerAttack attack(cfg);
    const ml::Prf prf = eval::run_attack(attack, experiment);
    mean.f1 += prf.f1;
    mean.precision += prf.precision;
    mean.recall += prf.recall;
  }
  mean.f1 /= seeds;
  mean.precision /= seeds;
  mean.recall /= seeds;
  return mean;
}

/// Banner printed at the top of every bench.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Standard footer: write the CSV and tell the user where it went.
inline void finish(const util::Table& table, const std::string& name,
                   const std::string& title) {
  table.print(title);
  table.write_csv(out_path(name));
  std::printf("csv: %s\n", out_path(name).c_str());
}

/// Shared driver for the three countermeasure benches (Figs 14-16): sweep
/// the perturbation ratio 10-50 %, re-running every attack on the perturbed
/// dataset while keeping the pair split fixed (the ground truth does not
/// change, only the published check-ins).
using ObfuscateFn = std::function<data::Dataset(
    const data::Dataset&, double ratio, util::Rng&)>;

inline void run_obfuscation_bench(const std::string& bench_name,
                                  const std::string& title,
                                  const ObfuscateFn& mechanism) {
  util::Table table(
      {"dataset", "ratio %", "attack", "F1", "precision", "recall"});

  for (const auto& base : paper_worlds()) {
    const eval::Experiment clean =
        eval::make_experiment(sweep_world(base));
    for (double ratio : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      util::Rng rng(base.seed ^ static_cast<std::uint64_t>(ratio * 1000));
      eval::Experiment perturbed;
      perturbed.dataset = mechanism(clean.dataset, ratio, rng);
      perturbed.split = clean.split;
      perturbed.name = clean.name;

      auto record = [&](baselines::FriendshipAttack& attack) {
        const ml::Prf prf = eval::run_attack(attack, perturbed);
        table.new_row()
            .add(perturbed.name)
            .add(ratio * 100, 0)
            .add(attack.name())
            .add(prf.f1, 4)
            .add(prf.precision, 4)
            .add(prf.recall, 4);
      };

      eval::FriendSeekerAttack seeker(sweep_seeker_config());
      record(seeker);
      for (const auto& baseline : eval::make_baselines())
        record(*baseline);
    }
  }

  finish(table, bench_name, title);
  std::printf(
      "expect: all attacks degrade with ratio; knowledge-based attacks "
      "collapse while friendseeker degrades most gracefully and leads at "
      "every ratio\n");
}


}  // namespace fs::bench
