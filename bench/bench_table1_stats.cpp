// Table I: statistics of the two MSN trace datasets.
//
// Paper values (after filtering users with < 2 check-ins):
//   Brightkite: 157,279 POIs | 14,897 users | 1,360,524 check-ins | 93,754 links
//   Gowalla:    104,568 POIs | 12,439 users |   656,642 check-ins | 51,270 links
// The synthetic worlds are laptop-scale; the property preserved is the
// RELATIVE shape: Brightkite denser in check-ins per user and links per
// user than Gowalla.
#include "bench_common.h"

#include "data/stats.h"

int main() {
  using namespace fs;
  bench::banner("bench_table1_stats", "Table I — dataset statistics");

  util::Table table({"dataset", "pois", "users", "checkins",
                     "checkins/user", "links", "links/user"});
  for (const auto& world_cfg : bench::paper_worlds()) {
    const data::SyntheticWorld world = data::generate_world(world_cfg);
    const data::DatasetStats s = data::dataset_stats(world.dataset);
    table.new_row()
        .add(world_cfg.name)
        .add(s.pois)
        .add(s.users)
        .add(s.checkins)
        .add(s.mean_checkins_per_user, 1)
        .add(s.links)
        .add(static_cast<double>(s.links) / static_cast<double>(s.users), 2);
  }
  // Paper reference rows for shape comparison.
  table.new_row()
      .add("gowalla (paper)")
      .add(std::size_t{104568})
      .add(std::size_t{12439})
      .add(std::size_t{656642})
      .add(52.8, 1)
      .add(std::size_t{51270})
      .add(4.12, 2);
  table.new_row()
      .add("brightkite (paper)")
      .add(std::size_t{157279})
      .add(std::size_t{14897})
      .add(std::size_t{1360524})
      .add(91.3, 1)
      .add(std::size_t{93754})
      .add(6.29, 2);

  bench::finish(table, "table1_stats", "Table I — dataset statistics");
  return 0;
}
