// Fig 7: attack performance (F1 / recall / precision) as a function of the
// maximum number of POIs per grid, sigma.
//
// Paper: F1 peaks at sigma = 750 (Gowalla) / 1000 (Brightkite) out of
// 500..1500 and declines on both sides. Scaled to our POI universe
// (~900 POIs vs the paper's ~100-150 k), the sweep covers 60..300.
// Shape to hold: an interior maximum — too-fine and too-coarse grids both
// lose F1 — with the sparser (gowalla-like) world peaking at a smaller
// sigma than the denser one.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig7_sigma",
                "Fig 7 — F1/recall/precision vs sigma (POIs per grid)");

  const std::size_t sigmas[] = {60, 90, 120, 180, 300};
  util::Table table(
      {"dataset", "sigma", "F1", "precision", "recall", "seconds"});

  constexpr int kSeeds = 2;
  for (const auto& base : bench::paper_worlds()) {
    const data::SyntheticWorldConfig world = bench::sweep_world(base);
    for (std::size_t sigma : sigmas) {
      core::FriendSeekerConfig cfg = bench::sweep_seeker_config();
      cfg.sigma = sigma;
      obs::Span timer("bench.fig7_sigma.point");
      const ml::Prf prf = bench::averaged_run(world, cfg, kSeeds);
      table.new_row()
          .add(world.name)
          .add(sigma)
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(timer.seconds(), 1);
    }
  }

  bench::finish(table, "fig7_sigma", "Fig 7 — sigma sensitivity");
  std::printf("expect: interior F1 maximum in the sigma sweep\n");
  return 0;
}
