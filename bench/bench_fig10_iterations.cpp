// Fig 10: attack performance as a function of the number of refinement
// iterations.
//
// Paper: iteration always improves F1/recall/precision; the termination
// criterion (< 1 % edges changed) is met after 4 (Gowalla) / 5 (Brightkite)
// iterations. Shape to hold: monotone-ish F1 growth that saturates within
// ~5 iterations, with most of the gain in the first one or two.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig10_iterations",
                "Fig 10 — F1/recall/precision vs iteration count");

  util::Table table({"dataset", "iteration", "F1", "precision", "recall",
                     "graph edges", "edge change"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment experiment = eval::make_experiment(base);
    core::FriendSeekerConfig cfg = eval::default_seeker_config();
    cfg.max_iterations = 6;
    cfg.convergence_threshold = 0.0;  // run all iterations for the curve
    eval::FriendSeekerAttack attack(cfg);
    bench::run(attack, experiment);
    for (const auto& record : attack.last_result().iterations) {
      const ml::Prf prf =
          ml::prf(experiment.split.test_labels, record.test_predictions);
      table.new_row()
          .add(experiment.name)
          .add(record.iteration)
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(record.graph_edges)
          .add(record.edge_change_ratio, 4);
    }
  }

  bench::finish(table, "fig10_iterations", "Fig 10 — iteration curve");
  std::printf(
      "expect: F1 rises from iteration 0 (phase 1) and saturates within ~5 "
      "iterations; edge-change ratio shrinks monotonically\n");
  return 0;
}
