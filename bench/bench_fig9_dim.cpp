// Fig 9: attack performance as a function of the presence-proximity feature
// dimension d.
//
// Paper: d is doubled 16 -> 256; F1 rises with d (more information) then
// falls (noise), peaking at d = 128 at paper scale. Shape to hold: an
// interior maximum with degradation at both extremes.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig9_dim",
                "Fig 9 — F1/recall/precision vs feature dimension d");

  const std::size_t dims[] = {16, 32, 64, 128, 256};
  util::Table table({"dataset", "d", "F1", "precision", "recall", "seconds"});

  constexpr int kSeeds = 2;
  for (const auto& base : bench::paper_worlds()) {
    const data::SyntheticWorldConfig world = bench::sweep_world(base);
    for (std::size_t d : dims) {
      core::FriendSeekerConfig cfg = bench::sweep_seeker_config();
      cfg.presence.feature_dim = d;
      obs::Span timer("bench.fig9_dim.point");
      const ml::Prf prf = bench::averaged_run(world, cfg, kSeeds);
      table.new_row()
          .add(world.name)
          .add(d)
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(timer.seconds(), 1);
    }
  }

  bench::finish(table, "fig9_dim", "Fig 9 — feature dimension sensitivity");
  std::printf("expect: interior F1 maximum in the d sweep\n");
  return 0;
}
