// Fig 14: F1 vs the proportion of hidden (removed) check-ins, 10-50 %.
//
// Paper: all attacks degrade; FriendSeeker's F1 drops ~21 % from 10 % to
// 50 % hiding (vs ~29 % for the embedding baseline) and stays around 0.4
// even at 50 %. Hiding never removes a user's last check-in.
#include "bench_common.h"

int main() {
  fs::bench::banner("bench_fig14_hiding",
                    "Fig 14 — F1 vs proportion of hidden check-ins");
  fs::bench::run_obfuscation_bench("fig14_hiding",
                                   "Fig 14 — hiding countermeasure",
                                   fs::scenario::DefenseMechanism::kHiding);
  return 0;
}
