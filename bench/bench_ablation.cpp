// Ablation bench: isolates the design choices DESIGN.md calls out.
//
//   1. supervised vs plain autoencoder (alpha = 0)
//   2. k-hop reachable subgraph vs heuristic structural features
//   3. k sweep (2, 3, 4) — the paper claims k = 3 optimal
//   4. iteration on/off — phase 1 only vs full pipeline
//   5. quadtree vs uniform-grid spatial division
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_ablation", "design-choice ablations (DESIGN.md)");

  util::Table table(
      {"dataset", "variant", "F1", "precision", "recall", "seconds"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment experiment =
        eval::make_experiment(bench::sweep_world(base));

    struct Variant {
      std::string label;
      core::FriendSeekerConfig config;
    };
    std::vector<Variant> variants;
    const core::FriendSeekerConfig defaults = bench::sweep_seeker_config();

    variants.push_back({"full (default, k=3)", defaults});

    core::FriendSeekerConfig v = defaults;
    v.presence.alpha = 0.0;
    variants.push_back({"plain autoencoder (alpha=0)", v});

    v = defaults;
    v.use_social_feature = false;
    variants.push_back({"heuristic social features", v});

    v = defaults;
    v.k = 2;
    variants.push_back({"k=2", v});
    v = defaults;
    v.k = 4;
    variants.push_back({"k=4", v});

    v = defaults;
    v.iterate = false;
    variants.push_back({"phase 1 only (no iteration)", v});

    v = defaults;
    v.phase2_classifier =
        core::FriendSeekerConfig::Phase2Classifier::kLogistic;
    variants.push_back({"logistic C' (classifier independence)", v});

    v = defaults;
    v.uniform_grid = true;
    v.uniform_rows = 3;
    v.uniform_cols = 3;
    variants.push_back({"uniform 3x3 grid", v});

    for (const Variant& variant : variants) {
      eval::FriendSeekerAttack attack(variant.config);
      obs::Span timer("bench.ablation.point");
      const ml::Prf prf = bench::run(attack, experiment);
      table.new_row()
          .add(experiment.name)
          .add(variant.label)
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(timer.seconds(), 1);
    }
  }

  bench::finish(table, "ablation", "design-choice ablations");
  std::printf(
      "expect: the full configuration at or near the top; phase-1-only and "
      "alpha=0 clearly behind\n");
  return 0;
}
