// FriendGuard bench (extension — the paper's stated future work): compares
// the friendship-aware FriendGuard mechanism against the paper's three
// generic countermeasures at EQUAL perturbation budget, measured by how far
// each drives FriendSeeker's F1 down (lower = better defense) and by data
// utility retained (fraction of check-ins left untouched at their original
// POI and time).
#include <set>
#include <tuple>

#include "bench_common.h"

#include "data/defense.h"
#include "data/obfuscation.h"
#include "geo/quadtree.h"

namespace {

/// Fraction of original check-ins surviving unchanged (user, poi, time) in
/// the protected dataset — a simple utility metric.
double utility_retained(const fs::data::Dataset& original,
                        const fs::data::Dataset& protected_ds) {
  std::multiset<std::tuple<fs::data::UserId, fs::data::PoiId,
                           fs::geo::Timestamp>>
      sa;
  for (const auto& c : original.checkins())
    sa.insert({c.user, c.poi, c.time});
  std::size_t kept = 0;
  for (const auto& c : protected_ds.checkins()) {
    const auto it = sa.find({c.user, c.poi, c.time});
    if (it != sa.end()) {
      sa.erase(it);
      ++kept;
    }
  }
  return static_cast<double>(kept) /
         static_cast<double>(original.checkin_count());
}

}  // namespace

int main() {
  using namespace fs;
  bench::banner("bench_defense",
                "extension — FriendGuard vs generic countermeasures");

  util::Table table({"dataset", "defense", "budget %", "attack F1",
                     "utility retained %"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment clean = eval::make_experiment(
        bench::sweep_world(base));
    const geo::QuadtreeDivision division(clean.dataset.poi_coordinates(),
                                         120);

    auto evaluate = [&](const std::string& label,
                        const data::Dataset& protected_ds, double budget) {
      eval::Experiment perturbed;
      perturbed.dataset = protected_ds;
      perturbed.split = clean.split;
      perturbed.name = clean.name;
      eval::FriendSeekerAttack attack(bench::sweep_seeker_config());
      const ml::Prf prf = eval::run_attack(attack, perturbed);
      table.new_row()
          .add(clean.name)
          .add(label)
          .add(budget * 100, 0)
          .add(prf.f1, 4)
          .add(utility_retained(clean.dataset, protected_ds) * 100, 1);
    };

    evaluate("none", clean.dataset, 0.0);
    for (double budget : {0.2, 0.4}) {
      util::Rng rng(base.seed ^ 0xdef);
      evaluate("hiding", data::hide_checkins(clean.dataset, budget, rng),
               budget);
      evaluate("cross-grid blur",
               data::blur_cross_grid(clean.dataset, budget, division, rng),
               budget);
      data::FriendGuardConfig guard;
      guard.budget = budget;
      evaluate("friendguard",
               data::friend_guard(clean.dataset, division, guard), budget);
    }
  }

  bench::finish(table, "defense", "FriendGuard comparison");
  std::printf(
      "expect: at equal budget, friendguard drives attack F1 lowest while "
      "retaining competitive utility (hiding deletes records outright)\n");
  return 0;
}
