// FriendGuard bench (extension — the paper's stated future work): compares
// the friendship-aware FriendGuard mechanism against the paper's two
// strongest generic countermeasures at EQUAL perturbation budget, measured
// by how far each drives FriendSeeker's F1 down (lower = better defense)
// and by data utility retained (fraction of check-ins left untouched at
// their original POI and time).
//
// Built on the scenario runner: one declarative grid (2 worlds x 7 defense
// cells) produces every attack-F1 number, and the utility metric is
// computed on the IDENTICAL protected datasets, replayed through the
// runner's public apply_defense + defense_seed helpers.
#include <set>
#include <tuple>

#include "bench_common.h"

namespace {

/// Fraction of original check-ins surviving unchanged (user, poi, time) in
/// the protected dataset — a simple utility metric.
double utility_retained(const fs::data::Dataset& original,
                        const fs::data::Dataset& protected_ds) {
  std::multiset<std::tuple<fs::data::UserId, fs::data::PoiId,
                           fs::geo::Timestamp>>
      sa;
  for (const auto& c : original.checkins())
    sa.insert({c.user, c.poi, c.time});
  std::size_t kept = 0;
  for (const auto& c : protected_ds.checkins()) {
    const auto it = sa.find({c.user, c.poi, c.time});
    if (it != sa.end()) {
      sa.erase(it);
      ++kept;
    }
  }
  return static_cast<double>(kept) /
         static_cast<double>(original.checkin_count());
}

}  // namespace

int main() {
  using namespace fs;
  bench::banner("bench_defense",
                "extension — FriendGuard vs generic countermeasures");

  scenario::ScenarioConfig config;
  config.name = "defense";
  for (const char* preset : {"gowalla", "brightkite"}) {
    scenario::WorldSpec world;
    world.preset = preset;
    config.worlds.push_back(world);
  }
  config.defenses.push_back(scenario::DefenseSpec{});  // clean baseline
  for (double budget : {0.2, 0.4}) {
    for (scenario::DefenseMechanism mechanism :
         {scenario::DefenseMechanism::kHiding,
          scenario::DefenseMechanism::kBlurCross,
          scenario::DefenseMechanism::kFriendGuard}) {
      scenario::DefenseSpec defense;
      defense.mechanism = mechanism;
      defense.rate = budget;
      config.defenses.push_back(defense);
    }
  }
  config.attacks.push_back(scenario::AttackSpec{});
  config.models.push_back(scenario::ModelSpec{});
  config.dynamics.push_back(scenario::DynamicsSpec{});

  const scenario::MatrixResult matrix = scenario::run_scenario(config);

  util::Table table({"dataset", "defense", "budget %", "attack F1",
                     "utility retained %"});
  std::size_t cell_index = 0;
  for (const scenario::WorldSpec& world : config.worlds) {
    const std::string world_key = scenario::world_label(world);
    const data::Dataset clean =
        eval::make_experiment(scenario::resolve_world(world, config.seed), {},
                              0.7, scenario::split_seed(config.seed))
            .dataset;
    for (const scenario::DefenseSpec& defense : config.defenses) {
      const scenario::CellResult& cell = matrix.cells.at(cell_index++);
      const data::Dataset protected_ds = scenario::apply_defense(
          clean, defense,
          scenario::defense_seed(config.seed, world_key,
                                 scenario::defense_label(defense)));
      table.new_row()
          .add(world_key)
          .add(scenario::mechanism_name(defense.mechanism))
          .add(defense.rate * 100, 0)
          .add(cell.quality.f1, 4)
          .add(utility_retained(clean, protected_ds) * 100, 1);
    }
  }

  bench::finish(table, "defense", "FriendGuard comparison");
  std::printf(
      "expect: at equal budget, friendguard drives attack F1 lowest while "
      "retaining competitive utility (hiding deletes records outright)\n");
  return 0;
}
