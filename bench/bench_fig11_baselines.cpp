// Fig 11: FriendSeeker against the four baseline attacks on both datasets.
//
// Paper: FriendSeeker wins everywhere; the best baseline (user-graph
// embedding) trails by ~5 % on Brightkite and ~10 % on Gowalla; the
// knowledge-based attacks (co-location, distance) trail far behind the
// learning-based ones. Shape to hold: the same ranking.
#include "bench_common.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig11_baselines",
                "Fig 11 — FriendSeeker vs the four baselines");

  util::Table table(
      {"dataset", "attack", "F1", "precision", "recall", "seconds"});

  for (const auto& base : bench::paper_worlds()) {
    const eval::Experiment experiment = eval::make_experiment(base);

    auto record = [&](baselines::FriendshipAttack& attack) {
      obs::Span timer("bench.fig11_baselines.point");
      const ml::Prf prf = bench::run(attack, experiment);
      table.new_row()
          .add(experiment.name)
          .add(attack.name())
          .add(prf.f1, 4)
          .add(prf.precision, 4)
          .add(prf.recall, 4)
          .add(timer.seconds(), 1);
      return prf.f1;
    };

    eval::FriendSeekerAttack seeker(eval::default_seeker_config());
    const double ours = record(seeker);
    double best_baseline = 0.0;
    for (const auto& baseline : eval::make_baselines())
      best_baseline = std::max(best_baseline, record(*baseline));

    std::printf("%s: FriendSeeker %.4f vs best baseline %.4f (%+.1f%%)\n",
                experiment.name.c_str(), ours, best_baseline,
                best_baseline > 0 ? (ours / best_baseline - 1.0) * 100.0
                                  : 100.0);
  }

  bench::finish(table, "fig11_baselines", "Fig 11 — attack comparison");
  std::printf(
      "expect: friendseeker first; learning-based baselines above "
      "knowledge-based ones\n");
  return 0;
}
