// Fig 1: CDFs of the number of common POIs (a) and common friends (b) for
// friend vs non-friend pairs.
//
// Paper anchors: ~97 % of non-friends and ~71 % of friends share no common
// location; ~92 % of non-friend pairs share no common friends vs ~20 % of
// friends; pairs with > 10 co-locations are almost certainly friends.
// Shape to hold: the friend CDF lies strictly below the non-friend CDF at
// every x (friends systematically share more).
#include "bench_common.h"

#include "data/stats.h"
#include "eval/pairs.h"

int main() {
  using namespace fs;
  bench::banner("bench_fig1_cdfs",
                "Fig 1 — CDFs of #common POIs and #common friends");

  const std::size_t xs[] = {0, 1, 2, 3, 5, 10, 20};
  util::Table table({"dataset", "quantity", "population", "x", "CDF(x)"});

  for (const auto& world_cfg : bench::paper_worlds()) {
    const data::SyntheticWorld world = data::generate_world(world_cfg);
    const eval::LabeledPairs pairs =
        eval::sample_candidate_pairs(world.dataset);
    std::vector<data::UserPair> friends, non_friends;
    for (std::size_t i = 0; i < pairs.pairs.size(); ++i)
      (pairs.labels[i] ? friends : non_friends).push_back(pairs.pairs[i]);

    struct Series {
      const char* quantity;
      const char* population;
      data::CountCdf cdf;
    };
    const Series series[] = {
        {"common-pois", "friends",
         data::CountCdf(data::common_poi_counts(world.dataset, friends))},
        {"common-pois", "non-friends",
         data::CountCdf(data::common_poi_counts(world.dataset, non_friends))},
        {"common-friends", "friends",
         data::CountCdf(
             data::common_friend_counts(world.dataset.friendships(),
                                        friends))},
        {"common-friends", "non-friends",
         data::CountCdf(
             data::common_friend_counts(world.dataset.friendships(),
                                        non_friends))},
    };
    for (const Series& s : series)
      for (std::size_t x : xs)
        table.new_row()
            .add(world_cfg.name)
            .add(s.quantity)
            .add(s.population)
            .add(x)
            .add(s.cdf.at(x), 4);
  }

  bench::finish(table, "fig1_cdfs", "Fig 1 — evidence CDFs");
  std::printf("expect: friend CDFs below non-friend CDFs at every x\n");
  return 0;
}
