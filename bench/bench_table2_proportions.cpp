// Table II: the joint distribution of co-locations (C-L) and co-friends
// (C-F) among friend and non-friend pairs.
//
// Paper (Gowalla):    friends: 52.49 / 13.01 / 27.71 / 6.79 %
//                     non-friends: 1.67 / 13.05 / 3.93 / 81.35 %
// Paper (Brightkite): friends: 79.05 / 4.24 / 9.09 / 29.17 % (sic)
// Shape to hold: friends concentrate in cells with evidence (co-location
// and/or co-friend); non-friends concentrate in the neither cell.
#include "bench_common.h"

#include "data/stats.h"
#include "eval/pairs.h"

int main() {
  using namespace fs;
  bench::banner("bench_table2_proportions",
                "Table II — co-friend x co-location proportions");

  util::Table table({"dataset", "population", "CL&CF %", "CL only %",
                     "CF only %", "neither %"});
  for (const auto& world_cfg : bench::paper_worlds()) {
    const data::SyntheticWorld world = data::generate_world(world_cfg);
    const eval::LabeledPairs pairs =
        eval::sample_candidate_pairs(world.dataset);
    std::vector<data::UserPair> friends, non_friends;
    for (std::size_t i = 0; i < pairs.pairs.size(); ++i)
      (pairs.labels[i] ? friends : non_friends).push_back(pairs.pairs[i]);
    const data::CoPresenceCensus census =
        data::co_presence_census(world.dataset, friends, non_friends);

    auto emit = [&](const char* population, const double cells[2][2]) {
      table.new_row()
          .add(world_cfg.name)
          .add(population)
          .add(cells[1][1] * 100, 2)
          .add(cells[1][0] * 100, 2)
          .add(cells[0][1] * 100, 2)
          .add(cells[0][0] * 100, 2);
    };
    emit("friends", census.friends);
    emit("non-friends", census.non_friends);
  }
  table.new_row()
      .add("gowalla (paper)")
      .add("friends")
      .add(52.49, 2)
      .add(27.71, 2)
      .add(13.01, 2)
      .add(6.79, 2);
  table.new_row()
      .add("gowalla (paper)")
      .add("non-friends")
      .add(1.67, 2)
      .add(3.93, 2)
      .add(13.05, 2)
      .add(81.35, 2);
  table.new_row()
      .add("brightkite (paper)")
      .add("friends")
      .add(79.05, 2)
      .add(9.09, 2)
      .add(4.24, 2)
      .add(29.17, 2);
  table.new_row()
      .add("brightkite (paper)")
      .add("non-friends")
      .add(1.08, 2)
      .add(3.93, 2)
      .add(10.83, 2)
      .add(55.76, 2);

  bench::finish(table, "table2_proportions",
                "Table II — co-presence census");
  return 0;
}
