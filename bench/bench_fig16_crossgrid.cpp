// Fig 16: F1 vs the proportion of cross-grid blurred check-ins, 10-50 %.
//
// Paper: cross-grid blurring (relocating a check-in's POI into a random
// neighboring grid) is the most effective countermeasure — it injects
// genuine spatial noise — yet FriendSeeker still leads every baseline and
// keeps F1 around 0.4 at 50 %.
#include "bench_common.h"

int main() {
  fs::bench::banner(
      "bench_fig16_crossgrid",
      "Fig 16 — F1 vs proportion of cross-grid blurred check-ins");
  fs::bench::run_obfuscation_bench(
      "fig16_crossgrid", "Fig 16 — cross-grid blurring countermeasure",
      fs::scenario::DefenseMechanism::kBlurCross);
  return 0;
}
