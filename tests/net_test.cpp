// fs::net unit + integration tests: frame codec (including the typed
// decode-failure contract), the minimal HTTP head parser, and the live
// NetServer — hello/commit/ack semantics, poison routing for corrupt and
// unframeable bytes, connection-cap shedding, idle reaping, scrape
// endpoints, and the retrying feed client.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/feed.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/server.h"
#include "net/socket.h"
#include "stream/event.h"
#include "util/binary_io.h"
#include "util/error.h"

namespace fs::net {
namespace {

// ---------------------------------------------------------------- frames

TEST(Frame, RoundtripsSingleAndBackToBackFrames) {
  const std::string wire = encode_frame(FrameType::kCheckin, "line one") +
                           encode_frame(FrameType::kCommit, "") +
                           encode_frame(FrameType::kCheckin, "line two");
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());

  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kCheckin);
  EXPECT_EQ(frame.payload, "line one");
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kCommit);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.payload, "line two");
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, DecodesAcrossByteAtATimeFeeds) {
  const std::string wire = encode_frame(FrameType::kCheckin, "split me");
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(wire.data() + i, 1);
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kNeedMore) << "byte " << i;
  }
  decoder.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.payload, "split me");
}

TEST(Frame, HelloAndAckCarryU64Payloads) {
  const std::string wire = encode_frame_u64(FrameType::kAck, 123456789ULL);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kAck);
  ASSERT_TRUE(frame_u64(frame).has_value());
  EXPECT_EQ(*frame_u64(frame), 123456789ULL);

  Frame odd;
  odd.payload = "abc";  // not 8 bytes
  EXPECT_FALSE(frame_u64(odd).has_value());
}

TEST(Frame, CrcMismatchIsResyncableAndSkipsExactlyTheBadFrame) {
  std::string corrupt = encode_frame(FrameType::kCheckin, "poison me");
  corrupt[kFrameHeaderBytes] ^= 0x40;  // flip a payload bit
  const std::string wire =
      corrupt + encode_frame(FrameType::kCheckin, "still fine");
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());

  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kError);
  EXPECT_EQ(decoder.error(), FrameError::kCrcMismatch);
  ASSERT_TRUE(decoder.can_resync());
  decoder.resync();
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.payload, "still fine");
}

TEST(Frame, BadMagicAndBadTypeAndOversizedAreUnframeable) {
  {
    FrameDecoder decoder;
    decoder.feed("XXXX0123456789ab", 16);
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kError);
    EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
    EXPECT_FALSE(decoder.can_resync());
  }
  {
    const std::string wire = encode_frame_u64(FrameType::kAck, 0);
    std::string bad = wire;
    const std::uint32_t type = 99;
    std::memcpy(bad.data() + 4, &type, sizeof type);
    FrameDecoder decoder;
    decoder.feed(bad.data(), bad.size());
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kError);
    EXPECT_EQ(decoder.error(), FrameError::kBadType);
    EXPECT_FALSE(decoder.can_resync());
  }
  {
    // A hostile length field alone must error before any payload arrives:
    // the bound is what stops it allocating unbounded memory.
    std::string header = encode_frame(FrameType::kCheckin, "x");
    header.resize(kFrameHeaderBytes);
    const std::uint32_t huge =
        static_cast<std::uint32_t>(kMaxFramePayload + 1);
    std::memcpy(header.data() + 8, &huge, sizeof huge);
    FrameDecoder decoder;
    decoder.feed(header.data(), header.size());
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kError);
    EXPECT_EQ(decoder.error(), FrameError::kOversized);
    EXPECT_FALSE(decoder.can_resync());
  }
}

// ------------------------------------------------------------------ http

TEST(Http, ParsesRequestHeadAndStripsQuery) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string head =
      "GET /metrics?format=prometheus HTTP/1.1\r\nHost: x\r\n\r\ntrailing";
  ASSERT_EQ(parse_http_request(head, request, consumed),
            HttpParseStatus::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(head.substr(consumed), "trailing");
}

TEST(Http, IncompleteHeadNeedsMoreAndGarbageErrors) {
  HttpRequest request;
  std::size_t consumed = 0;
  EXPECT_EQ(parse_http_request("GET /healthz HTTP/1.1\r\nHost:", request,
                               consumed),
            HttpParseStatus::kNeedMore);
  EXPECT_EQ(parse_http_request("no spaces here\r\n\r\n", request, consumed),
            HttpParseStatus::kError);
}

TEST(Http, ResponseCarriesLengthAndConnectionClose) {
  const std::string response = http_response(200, "text/plain", "hi\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 3), "hi\n");
}

// ------------------------------------------------------------- server

/// A hand-driven feed peer: sends raw bytes, decodes reply frames.
struct RawClient {
  Fd fd;
  FrameDecoder decoder;

  explicit RawClient(std::uint16_t port)
      : fd(connect_tcp("127.0.0.1", port)) {
    set_recv_timeout(fd.get(), 5000.0);
  }

  void send(std::string_view bytes) {
    ASSERT_TRUE(util::write_all_eintr(fd.get(), bytes.data(), bytes.size()));
  }

  /// Blocks (bounded by the socket timeout) until one frame arrives.
  Frame read_frame() {
    Frame frame;
    while (true) {
      if (decoder.next(frame) == DecodeStatus::kFrame) return frame;
      char buf[512];
      const ssize_t n = util::read_eintr(fd.get(), buf, sizeof buf);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while waiting for a frame";
        return frame;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer closes the connection (bounded wait).
  bool reads_eof() {
    char buf[512];
    while (true) {
      const ssize_t n = util::read_eintr(fd.get(), buf, sizeof buf);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout or error, not a clean close
    }
  }
};

NetConfig test_config() {
  NetConfig config;
  config.poll_interval_ms = 2.0;
  return config;
}

/// Drains the server until `want` items arrive (bounded wait).
std::vector<stream::SourceItem> drain_items(NetServer& server,
                                            std::size_t want) {
  std::vector<stream::SourceItem> items;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (items.size() < want &&
         std::chrono::steady_clock::now() < deadline) {
    if (server.drain(want - items.size(), items) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return items;
}

std::string http_exchange(std::uint16_t port, const std::string& head) {
  Fd fd = connect_tcp("127.0.0.1", port);
  set_recv_timeout(fd.get(), 5000.0);
  EXPECT_TRUE(util::write_all_eintr(fd.get(), head.data(), head.size()));
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = util::read_eintr(fd.get(), buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(NetServer, HelloEnqueueCommitAckRoundtrip) {
  NetServer server(test_config());
  server.start();
  RawClient client(server.port());

  client.send(encode_frame(FrameType::kHello, ""));
  Frame hello = client.read_frame();
  ASSERT_EQ(hello.type, FrameType::kHello);
  EXPECT_EQ(frame_u64(hello).value_or(99), 0u);  // nothing enqueued yet

  client.send(encode_frame(FrameType::kCheckin, "1\t2010-10-19T23:55:27Z\t30.2\t-97.7\t42"));
  client.send(encode_frame(FrameType::kCheckin, "2\t2010-10-19T23:58:00Z\t30.3\t-97.6\t43"));
  client.send(encode_frame(FrameType::kCommit, ""));

  // Daemon side: the items arrive poison-free, the commit is pending until
  // we publish a durable watermark that covers it, then the ack flows.
  const auto items = drain_items(server, 2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_FALSE(items[0].poison.has_value());
  EXPECT_NE(items[0].line.find("\t42"), std::string::npos);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!server.commit_pending() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(server.commit_pending());
  server.publish_durable(2);

  Frame ack = client.read_frame();
  ASSERT_EQ(ack.type, FrameType::kAck);
  EXPECT_EQ(frame_u64(ack).value_or(0), 2u);

  // A second session resumes past everything already enqueued.
  RawClient resumed(server.port());
  resumed.send(encode_frame(FrameType::kHello, ""));
  EXPECT_EQ(frame_u64(resumed.read_frame()).value_or(0), 2u);
  EXPECT_EQ(server.stats().commits_acked, 1u);
  server.stop();
}

TEST(NetServer, CrcCorruptFrameIsPoisonedAndStreamResyncs) {
  NetServer server(test_config());
  server.start();
  RawClient client(server.port());

  std::string corrupt = encode_frame(FrameType::kCheckin, "garbled payload");
  corrupt[kFrameHeaderBytes + 2] ^= 0x08;
  client.send(encode_frame(FrameType::kCheckin, "before"));
  client.send(corrupt);
  client.send(encode_frame(FrameType::kCheckin, "after"));

  const auto items = drain_items(server, 3);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_FALSE(items[0].poison.has_value());
  ASSERT_TRUE(items[1].poison.has_value());
  EXPECT_EQ(*items[1].poison, stream::RejectReason::kFrameCorrupt);
  EXPECT_FALSE(items[2].poison.has_value());
  EXPECT_EQ(items[2].line, "after");
  EXPECT_EQ(server.stats().frames_rejected, 1u);
  server.stop();
}

TEST(NetServer, UnframeableBytesArePoisonedAndTheConnectionCloses) {
  NetServer server(test_config());
  server.start();
  RawClient client(server.port());

  // A valid hello marks the connection as feed protocol; the garbage after
  // it has no recoverable frame boundary.
  client.send(encode_frame(FrameType::kHello, ""));
  (void)client.read_frame();
  client.send("ZZZZ this is not a frame and never will be");

  const auto items = drain_items(server, 1);
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(items[0].poison.has_value());
  EXPECT_EQ(*items[0].poison, stream::RejectReason::kFrameMalformed);
  EXPECT_TRUE(client.reads_eof());
  server.stop();
}

TEST(NetServer, ShedsConnectionsOverTheCap) {
  NetConfig config = test_config();
  config.max_connections = 1;
  NetServer server(config);
  server.start();

  RawClient first(server.port());
  first.send(encode_frame(FrameType::kHello, ""));
  (void)first.read_frame();  // established and counted

  RawClient second(server.port());
  EXPECT_TRUE(second.reads_eof()) << "over-cap connection was not shed";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().connections_shed == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.stats().connections_shed, 1u);
  EXPECT_EQ(server.stats().connections_total, 1u);
  server.stop();
}

TEST(NetServer, ReapsIdlePeers) {
  NetConfig config = test_config();
  config.idle_timeout_ms = 50.0;
  NetServer server(config);
  server.start();

  RawClient slowloris(server.port());
  EXPECT_TRUE(slowloris.reads_eof()) << "stalled peer was never reaped";
  EXPECT_GE(server.stats().connections_reaped, 1u);
  server.stop();
}

TEST(NetServer, ServesScrapeEndpoints) {
  NetServer server(test_config());
  server.start();
  server.publish_streamz("{\"ticks\":7}");
  const std::uint16_t port = server.port();

  const std::string health = http_exchange(
      port, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string streamz = http_exchange(
      port, "GET /streamz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(streamz.find("\"ticks\":7"), std::string::npos);
  EXPECT_NE(streamz.find("\"net\":"), std::string::npos);

  const std::string metrics = http_exchange(
      port, "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string missing = http_exchange(
      port, "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string put = http_exchange(
      port, "PUT /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(put.find("405"), std::string::npos);
  EXPECT_GE(server.stats().http_requests, 5u);
  server.stop();
}

TEST(NetServer, BoundsHttpHeaderFloods) {
  NetConfig config = test_config();
  config.max_http_header_bytes = 256;
  NetServer server(config);
  server.start();
  const std::string flood =
      "GET /healthz HTTP/1.1\r\nX-Filler: " + std::string(1024, 'a');
  const std::string response = http_exchange(server.port(), flood);
  EXPECT_NE(response.find("431"), std::string::npos);
  server.stop();
}

// --------------------------------------------------------------- feed

TEST(Feed, FeedsLinesAndBlocksUntilDurableAck) {
  NetServer server(test_config());
  server.start();

  const std::vector<std::string> lines = {"l0", "l1", "l2", "l3", "l4"};
  FeedOptions options;
  options.port = server.port();
  options.retry.max_attempts = 5;
  options.retry.backoff_ms = 5.0;

  FeedReport report;
  std::string error;
  std::thread client([&] {
    try {
      report = feed_lines(lines, options);
    } catch (const Error& e) {
      error = e.what();
    }
  });

  const auto items = drain_items(server, lines.size());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!server.commit_pending() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.publish_durable(lines.size());
  client.join();

  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(items.size(), lines.size());
  EXPECT_EQ(items[4].line, "l4");
  EXPECT_TRUE(report.committed);
  EXPECT_EQ(report.lines_total, lines.size());
  EXPECT_EQ(report.lines_sent, lines.size());
  EXPECT_EQ(report.durable_watermark, lines.size());
  EXPECT_EQ(report.reconnects, 0u);
  server.stop();
}

TEST(Feed, ResumesFromTheHelloWatermarkInsteadOfResending) {
  NetServer server(test_config());
  server.add_resume_base(3);  // recovery found 3 lines already journaled
  server.start();

  const std::vector<std::string> lines = {"l0", "l1", "l2", "l3", "l4"};
  FeedOptions options;
  options.port = server.port();
  options.commit = false;  // no ack needed: sending alone completes it

  FeedReport report;
  std::thread client([&] { report = feed_lines(lines, options); });
  const auto items = drain_items(server, 2);
  client.join();

  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].line, "l3");  // at-most-once: l0..l2 skipped
  EXPECT_EQ(items[1].line, "l4");
  EXPECT_EQ(report.lines_sent, 2u);
  server.stop();
}

TEST(Feed, ExhaustsItsRetryBudgetAgainstADeadEndpoint) {
  FeedOptions options;
  options.host = "127.0.0.1";
  options.port = 1;  // privileged + unbound: connect always fails
  options.retry.max_attempts = 3;
  options.retry.backoff_ms = 1.0;
  EXPECT_THROW(feed_lines({"x"}, options), IoError);
}

}  // namespace
}  // namespace fs::net
