// fs::par — the deterministic parallel runtime. These tests pin the
// determinism contract (decomposition and results independent of the
// thread count), governance integration (cancellation, deadline, memory
// budget at chunk granularity), exception selection, and the pipeline-level
// guarantee that --threads N reproduces --threads 1 byte for byte.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "graph/metrics.h"
#include "par/par.h"
#include "par/pool.h"
#include "util/error.h"
#include "util/runtime.h"

namespace fs {
namespace {

/// Every test leaves the process back at a single-thread pool so suites
/// running after this one see the default configuration.
class ParTest : public ::testing::Test {
 protected:
  void TearDown() override { par::set_threads(1); }
};

TEST_F(ParTest, PoolRunsEveryParticipant) {
  par::ThreadPool pool(4);
  ASSERT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h.store(0);
  pool.run([&](std::size_t slot) { hits[slot].fetch_add(1); });
  for (std::size_t slot = 0; slot < 4; ++slot)
    EXPECT_EQ(hits[slot].load(), 1) << "slot " << slot;
}

TEST_F(ParTest, SingleThreadPoolSpawnsNoWorkers) {
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  bool ran = false;
  pool.run([&](std::size_t slot) {
    EXPECT_EQ(slot, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST_F(ParTest, SetThreadsReconfiguresTheProcessPool) {
  par::set_threads(3);
  EXPECT_EQ(par::threads(), 3u);
  EXPECT_EQ(par::pool().threads(), 3u);
  par::set_threads(1);
  EXPECT_EQ(par::threads(), 1u);
}

TEST_F(ParTest, ParallelForComputesEveryIndexExactlyOnce) {
  par::set_threads(4);
  const std::size_t n = 10'000;
  std::vector<std::size_t> out(n, 0);
  par::ParallelOptions options;
  options.grain = 64;
  par::parallel_for(n, options,
                    [&](std::size_t i) { out[i] += i * i + 1; });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(out[i], i * i + 1) << "index " << i;
}

TEST_F(ParTest, DecompositionIsIndependentOfThreadCount) {
  const std::size_t n = 1003;
  const std::size_t grain = 17;
  const auto chunks_at = [&](std::size_t threads) {
    par::set_threads(threads);
    std::set<std::pair<std::size_t, std::size_t>> ranges;
    std::mutex mu;
    par::ParallelOptions options;
    options.grain = grain;
    par::parallel_for_chunks(n, options, [&](const par::ChunkRange& chunk) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace(chunk.begin, chunk.end);
    });
    return ranges;
  };
  const auto sequential = chunks_at(1);
  const auto pooled = chunks_at(4);
  EXPECT_EQ(sequential.size(), par::chunk_count(n, grain));
  EXPECT_EQ(sequential, pooled);
}

TEST_F(ParTest, FirstErrorByChunkIndexWins) {
  par::set_threads(4);
  par::ParallelOptions options;
  options.grain = 10;
  // Two failing chunks; the one with the LOWER chunk index must be the one
  // that surfaces, regardless of scheduling.
  try {
    par::parallel_for_chunks(1000, options,
                             [&](const par::ChunkRange& chunk) {
                               if (chunk.index == 7 || chunk.index == 31)
                                 throw std::runtime_error(
                                     "chunk " + std::to_string(chunk.index));
                             });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 7");
  }
}

TEST_F(ParTest, CancellationAbortsTheRegionWithCancelledError) {
  par::set_threads(4);
  runtime::CancellationToken token;
  runtime::ExecutionContext ctx;
  ctx.set_cancellation(&token);
  par::ParallelOptions options;
  options.context = &ctx;
  options.grain = 1;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      par::parallel_for(10'000, options,
                        [&](std::size_t) {
                          // Trip the token from inside the region: later
                          // chunks must hit the probe and abort.
                          if (executed.fetch_add(1) == 3) token.request();
                        }),
      CancelledError);
  // The abort is cooperative, not instant, but far fewer than all chunks
  // may run after the request.
  EXPECT_LT(executed.load(), 10'000u);
}

TEST_F(ParTest, ExpiredDeadlineSurfacesAsBudgetError) {
  par::set_threads(4);
  runtime::ExecutionContext ctx;
  ctx.set_deadline_seconds(1e-9);
  par::ParallelOptions options;
  options.context = &ctx;
  options.grain = 1;
  EXPECT_THROW(par::parallel_for(1000, options, [](std::size_t) {}),
               BudgetError);
}

TEST_F(ParTest, SoftDeadlineRegionRunsToCompletion) {
  // hard_deadline = false: an expired deadline must not abort the region
  // (phase-1 G0 seeding has nothing to degrade to), but cancellation must.
  par::set_threads(4);
  runtime::ExecutionContext ctx;
  ctx.set_deadline_seconds(1e-9);
  par::ParallelOptions options;
  options.context = &ctx;
  options.grain = 1;
  options.hard_deadline = false;
  std::atomic<std::size_t> executed{0};
  par::parallel_for(1000, options,
                    [&](std::size_t) { executed.fetch_add(1); });
  EXPECT_EQ(executed.load(), 1000u);

  runtime::CancellationToken token;
  token.request();
  ctx.set_cancellation(&token);
  EXPECT_THROW(par::parallel_for(1000, options, [](std::size_t) {}),
               CancelledError);
}

TEST_F(ParTest, WorkerScratchIsChargedAgainstTheMemoryBudget) {
  par::set_threads(4);
  runtime::ExecutionContext ctx;
  ctx.set_memory_limit(1024);
  par::ParallelOptions options;
  options.context = &ctx;
  options.grain = 1;
  options.scratch_bytes_per_worker = 4096;  // 4 workers * 4096 > 1024
  EXPECT_THROW(par::parallel_for(128, options, [](std::size_t) {}),
               BudgetError);
  EXPECT_EQ(ctx.charged(), 0u);  // the failed charge left no residue
}

TEST_F(ParTest, OrderedReduceFixesCombinationOrder) {
  // String concatenation is non-commutative and non-associative-friendly:
  // any reordering of partials changes the result, so equality with the
  // sequential reference proves the combine order is fixed.
  const std::size_t n = 257;
  par::ParallelOptions options;
  options.grain = 8;
  const auto map = [](const par::ChunkRange& chunk) {
    std::string part;
    for (std::size_t i = chunk.begin; i < chunk.end; ++i)
      part += std::to_string(i) + ",";
    return part;
  };
  const auto combine = [](std::string acc, std::string part) {
    return acc + part;
  };
  std::string reference;
  for (std::size_t i = 0; i < n; ++i) reference += std::to_string(i) + ",";

  par::set_threads(1);
  const std::string seq =
      par::ordered_reduce(n, std::string(), options, map, combine);
  par::set_threads(4);
  const std::string pooled =
      par::ordered_reduce(n, std::string(), options, map, combine);
  EXPECT_EQ(seq, reference);
  EXPECT_EQ(pooled, reference);
}

TEST_F(ParTest, ChunkRngIsAFunctionOfSeedAndChunkAlone) {
  util::Rng a = par::chunk_rng(42, 7);
  util::Rng b = par::chunk_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
  util::Rng other_chunk = par::chunk_rng(42, 8);
  util::Rng c = par::chunk_rng(42, 7);
  EXPECT_NE(c(), other_chunk());
}

TEST_F(ParTest, NestedParallelForRunsInlineWithoutDeadlock) {
  par::set_threads(4);
  const std::size_t outer = 64, inner = 64;
  std::vector<std::size_t> out(outer * inner, 0);
  par::ParallelOptions options;
  options.grain = 4;
  par::parallel_for(outer, options, [&](std::size_t i) {
    par::ParallelOptions inner_options;
    inner_options.grain = 4;
    par::parallel_for(inner, inner_options, [&](std::size_t j) {
      out[i * inner + j] = i + j;
    });
  });
  for (std::size_t i = 0; i < outer; ++i)
    for (std::size_t j = 0; j < inner; ++j)
      ASSERT_EQ(out[i * inner + j], i + j);
}

TEST_F(ParTest, GrainForTargetsConstantChunkCost) {
  EXPECT_EQ(par::grain_for(1u << 15), 1u);
  EXPECT_EQ(par::grain_for(1), std::size_t{1} << 15);
  EXPECT_EQ(par::grain_for(0), std::size_t{1} << 15);  // clamped, no div-0
  EXPECT_GE(par::grain_for(std::size_t{1} << 40), 1u);
}

// ---- Pipeline-level byte-identity across thread counts. ----------------

struct Experiment {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
};

Experiment make_experiment() {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 90;
  world_cfg.poi_count = 240;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  const eval::LabeledPairs pairs =
      eval::sample_candidate_pairs(world.dataset);
  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 3;
  cfg.convergence_threshold = 0.0;  // run all iterations in every variant
  return {world.dataset, eval::split_pairs(pairs, 0.7, 5), cfg};
}

bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST_F(ParTest, PipelineIsByteIdenticalAcrossThreadCounts) {
  const Experiment exp = make_experiment();
  const auto run_at = [&](std::size_t threads) {
    par::set_threads(threads);
    core::FriendSeeker seeker(exp.config);
    return seeker.run(exp.dataset, exp.split.train_pairs,
                      exp.split.train_labels, exp.split.test_pairs);
  };
  const core::FriendSeekerResult single = run_at(1);
  const core::FriendSeekerResult pooled = run_at(4);
  ASSERT_EQ(single.iterations_run, exp.config.max_iterations);
  EXPECT_EQ(pooled.test_predictions, single.test_predictions);
  EXPECT_TRUE(bytes_equal(pooled.test_scores, single.test_scores));
  EXPECT_EQ(pooled.final_graph.edge_count(),
            single.final_graph.edge_count());
  EXPECT_DOUBLE_EQ(
      graph::edge_change_ratio(pooled.final_graph, single.final_graph), 0.0);
  // Per-iteration trajectories match too, not just the end state.
  ASSERT_EQ(pooled.iterations.size(), single.iterations.size());
  for (std::size_t i = 0; i < single.iterations.size(); ++i) {
    EXPECT_EQ(pooled.iterations[i].graph_edges,
              single.iterations[i].graph_edges);
    EXPECT_EQ(pooled.iterations[i].test_predictions,
              single.iterations[i].test_predictions);
  }
}

}  // namespace
}  // namespace fs
