// fs::block subsystem tests: cell-index invariants, the candidate-gate
// differential contract (blocked vs dense runs infer bit-identical final
// graphs), and the documented recall-loss path for friends who never
// co-occur.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "block/candidate_gen.h"
#include "block/cell_index.h"
#include "block/feature_cache.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "geo/quadtree.h"
#include "obs/metrics.h"

namespace fs {
namespace {

// ---------- CellIndex invariants ----------

struct IndexedWorld {
  data::SyntheticWorld world;
  std::unique_ptr<geo::QuadtreeDivision> quadtree;
  std::unique_ptr<geo::QuadtreeDivisionView> view;
  std::unique_ptr<geo::TimeSlotting> slots;
  std::unique_ptr<block::CellIndex> index;
};

IndexedWorld make_indexed_world(std::uint64_t seed, std::size_t users = 60,
                                std::size_t sigma = 30) {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = users;
  cfg.poi_count = 160;
  cfg.city_count = 3;
  cfg.weeks = 4;
  cfg.seed = seed;
  IndexedWorld out;
  out.world = data::generate_world(cfg);
  out.quadtree = std::make_unique<geo::QuadtreeDivision>(
      out.world.dataset.poi_coordinates(), sigma);
  out.view = std::make_unique<geo::QuadtreeDivisionView>(*out.quadtree);
  out.slots = std::make_unique<geo::TimeSlotting>(
      out.world.dataset.window_begin(), out.world.dataset.window_end(),
      7 * geo::kSecondsPerDay);
  out.index = std::make_unique<block::CellIndex>(out.world.dataset, *out.view,
                                                 *out.slots);
  return out;
}

TEST(CellIndex, ProfilesMatchTrajectories) {
  const IndexedWorld iw = make_indexed_world(11);
  const data::Dataset& ds = iw.world.dataset;
  const block::CellIndex& index = *iw.index;
  ASSERT_EQ(index.user_count(), ds.user_count());
  for (data::UserId u = 0; u < ds.user_count(); ++u) {
    // Recompute the profile from the raw trajectory.
    std::vector<std::uint32_t> expect;
    for (const data::CheckIn& c : ds.trajectory(u)) {
      const std::size_t grid = iw.view->cell_of(c.location);
      const std::size_t slot = iw.slots->slot_of(c.time);
      expect.push_back(
          static_cast<std::uint32_t>(grid * index.slot_count() + slot));
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    const auto profile = index.cell_profile(u);
    ASSERT_EQ(profile.size(), expect.size()) << "user " << u;
    EXPECT_TRUE(std::equal(profile.begin(), profile.end(), expect.begin()));
    // Inverted index agrees: the user appears in exactly its cells.
    for (std::uint32_t cell : expect) {
      const auto users = index.users_in_cell(cell);
      EXPECT_TRUE(std::binary_search(users.begin(), users.end(), u));
    }
  }
}

TEST(CellIndex, CooccurIsSymmetricAndMatchesProfiles) {
  const IndexedWorld iw = make_indexed_world(13);
  const block::CellIndex& index = *iw.index;
  const auto slot_count = static_cast<std::uint32_t>(index.slot_count());
  for (int tolerance : {0, 1, 2}) {
    for (data::UserId a = 0; a < 25; ++a) {
      for (data::UserId b = a + 1; b < 25; ++b) {
        bool expect = false;
        for (std::uint32_t ca : index.cell_profile(a)) {
          for (std::uint32_t cb : index.cell_profile(b)) {
            if (ca / slot_count != cb / slot_count) continue;
            const int da = static_cast<int>(ca % slot_count);
            const int db = static_cast<int>(cb % slot_count);
            if (std::abs(da - db) <= tolerance) expect = true;
          }
        }
        EXPECT_EQ(index.cooccur(a, b, tolerance), expect)
            << "pair (" << a << ", " << b << ") tol " << tolerance;
        EXPECT_EQ(index.cooccur(b, a, tolerance),
                  index.cooccur(a, b, tolerance));
      }
    }
  }
}

TEST(CellIndex, SignatureTracksContent) {
  const IndexedWorld a = make_indexed_world(17);
  const IndexedWorld b = make_indexed_world(17);
  const IndexedWorld c = make_indexed_world(18);
  EXPECT_EQ(a.index->signature(), b.index->signature());
  EXPECT_NE(a.index->signature(), c.index->signature());
}

TEST(StrongGraph, EdgesAreExactlyStrongCooccurrences) {
  const IndexedWorld iw = make_indexed_world(19, 40);
  const block::CellIndex& index = *iw.index;
  const graph::Graph strong = block::strong_cooccurrence_graph(index);
  ASSERT_EQ(strong.node_count(), index.user_count());
  for (data::UserId a = 0; a < index.user_count(); ++a)
    for (data::UserId b = a + 1; b < index.user_count(); ++b)
      EXPECT_EQ(strong.has_edge(a, b), index.strong_cooccur(a, b))
          << "pair (" << a << ", " << b << ")";
}

// ---------- Differential: blocked == dense final graph ----------

core::FriendSeekerResult run_with_mode(const eval::BenchPreset& preset,
                                       const eval::Experiment& experiment,
                                       block::BlockingMode mode) {
  core::FriendSeekerConfig cfg = preset.seeker;
  cfg.blocking.mode = mode;
  core::FriendSeeker seeker(cfg);
  return seeker.run(experiment.dataset, experiment.split.train_pairs,
                    experiment.split.train_labels,
                    experiment.split.test_pairs);
}

void expect_differential_identity(const eval::BenchPreset& preset) {
  const eval::Experiment experiment = eval::make_experiment(preset.world);
  const core::FriendSeekerResult off =
      run_with_mode(preset, experiment, block::BlockingMode::kOff);
  const core::FriendSeekerResult on =
      run_with_mode(preset, experiment, block::BlockingMode::kOn);
  EXPECT_FALSE(off.blocking_active);
  EXPECT_TRUE(on.blocking_active);
  // The blocked run must actually have skipped work, or the test is vacuous.
  EXPECT_GT(on.blocking.pruned_pairs, 0u);
  EXPECT_EQ(on.blocking.scored_pairs + on.blocking.pruned_pairs,
            on.blocking.universe_pairs);
  // The candidate gate is part of the model, so the inferred graph and the
  // per-pair labels must match bit for bit across modes.
  EXPECT_EQ(eval::graph_digest(off.final_graph),
            eval::graph_digest(on.final_graph));
  EXPECT_EQ(off.test_predictions, on.test_predictions);
}

TEST(BlockDifferential, TinyPresetBlockedMatchesDense) {
  expect_differential_identity(eval::bench_preset("tiny"));
}

TEST(BlockDifferential, GowallaLikeWorldBlockedMatchesDense) {
  // The full gowalla bench preset runs for minutes; this keeps its world
  // shape (multi-city GowallaLike geography, strict same-slot blocking)
  // at a scale sanitizer builds can afford.
  eval::BenchPreset preset = eval::bench_preset("gowalla");
  preset.world.user_count = 110;
  preset.world.poi_count = 320;
  preset.world.weeks = 5;
  preset.world.city_count = 6;
  preset.seeker.sigma = 40;
  preset.seeker.presence.feature_dim = 24;
  preset.seeker.presence.epochs = 5;
  preset.seeker.presence.max_autoencoder_rows = 250;
  preset.seeker.max_iterations = 2;
  preset.seeker.max_svm_train_rows = 400;
  expect_differential_identity(preset);
}

// ---------- Recall-loss contract ----------

TEST(BlockRecallLoss, NeverCoOccurringFriendIsPrunedAndCounted) {
  // Two far-apart communities that never mix: users 0-5 check into the
  // western POI cluster, users 6-11 into the eastern one. The hidden
  // friend pair (0, 6) spans the gap — no shared (cell, slot) at any
  // tolerance and no strong-co-occurrence path between the communities —
  // so blocking prunes it, and the documented contract is that it is
  // predicted non-friend and counted, never silently resurrected.
  constexpr std::size_t kUsers = 12;
  std::vector<data::Poi> pois;
  for (int i = 0; i < 6; ++i)
    pois.push_back({{0.001 * i, 0.001 * i}, 0});            // west cluster
  for (int i = 0; i < 6; ++i)
    pois.push_back({{5.0 + 0.001 * i, 5.0 + 0.001 * i}, 0});  // east cluster

  std::vector<data::CheckIn> checkins;
  const auto day = static_cast<geo::Timestamp>(geo::kSecondsPerDay);
  for (data::UserId u = 0; u < kUsers; ++u) {
    const bool east = u >= 6;
    for (int visit = 0; visit < 8; ++visit) {
      data::CheckIn c;
      c.user = u;
      c.poi = static_cast<data::PoiId>((east ? 6 : 0) + (u + visit) % 6);
      c.time = day * static_cast<geo::Timestamp>(1 + visit * 3);
      c.location = pois[c.poi].location;
      checkins.push_back(c);
    }
  }

  graph::Graph friends(kUsers);
  for (data::UserId u = 0; u + 1 < 6; ++u) friends.add_edge(u, u + 1);
  for (data::UserId u = 6; u + 1 < 12; ++u) friends.add_edge(u, u + 1);
  friends.add_edge(0, 6);  // the hidden cross-community friendship

  const data::Dataset dataset =
      data::Dataset::build(kUsers, pois, checkins, friends);

  core::FriendSeekerConfig cfg = eval::default_seeker_config();
  cfg.sigma = 2;  // force a fine division: the clusters get distinct cells
  cfg.presence.feature_dim = 8;
  cfg.presence.epochs = 2;
  cfg.max_iterations = 1;
  cfg.blocking.mode = block::BlockingMode::kOn;

  const std::vector<data::UserPair> train_pairs = {
      {1, 2}, {2, 3}, {7, 8}, {8, 9},   // positives (in-community friends)
      {1, 4}, {2, 5}, {7, 10}, {8, 11}, // negatives
  };
  const std::vector<int> train_labels = {1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<data::UserPair> test_pairs = {
      {0, 6},  // the hidden friend pair: never co-occurs
      {3, 4}, {9, 10}, {4, 5},
  };

  const std::uint64_t pruned_before =
      obs::metrics().counter("block.candidates_pruned").value();
  core::FriendSeeker seeker(cfg);
  const core::FriendSeekerResult result =
      seeker.run(dataset, train_pairs, train_labels, test_pairs);

  EXPECT_TRUE(result.blocking_active);
  // The hidden pair is absent from the scored universe...
  EXPECT_GE(result.blocking.pruned_pairs, 1u);
  EXPECT_GE(obs::metrics().counter("block.candidates_pruned").value(),
            pruned_before + result.blocking.pruned_pairs);
  // ...and the documented recall loss: predicted non-friend, never scored.
  EXPECT_EQ(result.test_predictions[0], 0);
  EXPECT_EQ(result.test_scores[0], 0.0);
  EXPECT_FALSE(result.final_graph.has_edge(0, 6));
}

// ---------- FeatureCache mechanics ----------

TEST(FeatureCache, InvalidatesOnSignatureChangeOnly) {
  block::FeatureCache cache;
  cache.prepare(42, 4, 2, nullptr);
  double* row = cache.insert_joc({1, 2});
  for (int i = 0; i < 4; ++i) row[i] = static_cast<double>(i);
  ASSERT_NE(cache.find_joc({1, 2}), nullptr);
  EXPECT_GT(cache.bytes(), 0u);

  // Matching prepare: entries survive, counters accrue.
  cache.prepare(42, 4, 2, nullptr);
  const double* hit = cache.find_joc({1, 2});
  ASSERT_NE(hit, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hit[i], static_cast<double>(i));

  // Signature change: everything drops.
  cache.prepare(43, 4, 2, nullptr);
  EXPECT_EQ(cache.find_joc({1, 2}), nullptr);
  EXPECT_EQ(cache.stats().joc_rows, 0u);
}

TEST(FeatureCache, ChargesMemoryAgainstContext) {
  runtime::ExecutionContext context;
  block::FeatureCache cache;
  cache.prepare(7, 64, 16, &context);
  for (std::uint32_t i = 0; i < 200; ++i) cache.insert_joc({i, i + 1});
  EXPECT_GT(cache.bytes(), 0u);
  EXPECT_GE(context.peak_charged(), cache.bytes());
  // Dropping the arenas releases the charges.
  cache.prepare(8, 64, 16, &context);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(FeatureCache, ExternalCacheIsReusedAcrossRuns) {
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);

  block::FeatureCache cache;
  core::FriendSeekerConfig cfg = preset.seeker;
  cfg.feature_cache = &cache;
  core::FriendSeeker seeker(cfg);
  const core::FriendSeekerResult first =
      seeker.run(experiment.dataset, experiment.split.train_pairs,
                 experiment.split.train_labels, experiment.split.test_pairs);
  const block::FeatureCache::Stats warm = cache.stats();
  EXPECT_GT(warm.joc_rows, 0u);
  // Phase-2 iterations >= 2 re-read every presence row from the cache.
  EXPECT_GT(first.phase2_cache_hit_rate, 0.5);

  // A second identical run must be all hits: same signature, warm arenas.
  const core::FriendSeekerResult second =
      seeker.run(experiment.dataset, experiment.split.train_pairs,
                 experiment.split.train_labels, experiment.split.test_pairs);
  const block::FeatureCache::Stats after = cache.stats();
  EXPECT_EQ(after.joc_misses, warm.joc_misses);
  EXPECT_EQ(after.presence_misses, warm.presence_misses);
  EXPECT_GT(after.joc_hits, warm.joc_hits);
  // And byte-identical outputs.
  EXPECT_EQ(eval::result_digest(first), eval::result_digest(second));
}

}  // namespace
}  // namespace fs
