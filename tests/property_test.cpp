// Parameterized property sweeps: invariants that must hold across whole
// hyperparameter ranges, not just at defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <tuple>

#include "block/candidate_gen.h"
#include "block/cell_index.h"
#include "block/feature_cache.h"
#include "core/joc.h"
#include "core/pipeline.h"
#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "par/pool.h"
#include "data/obfuscation.h"
#include "data/synthetic.h"
#include "geo/quadtree.h"
#include "graph/generators.h"
#include "graph/khop.h"
#include "graph/metrics.h"
#include "ml/knn.h"
#include "ml/svm.h"
#include "scenario/config.h"
#include "scenario/runner.h"

namespace fs {
namespace {

// ---------- quadtree invariants across sigma ----------

class QuadtreeSigmaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuadtreeSigmaSweep, PartitionInvariants) {
  util::Rng rng(5);
  std::vector<geo::LatLng> pois;
  for (int i = 0; i < 400; ++i)
    pois.push_back({rng.normal(0.0, 1.0), rng.normal(10.0, 2.0)});
  const std::size_t sigma = GetParam();
  const geo::QuadtreeDivision division(pois, sigma);

  // Every leaf respects sigma (no degenerate coordinates here).
  std::size_t total = 0;
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell) {
    EXPECT_LE(division.cell_pois(cell).size(), sigma);
    total += division.cell_pois(cell).size();
  }
  // Leaves partition the POI set.
  EXPECT_EQ(total, pois.size());
  // Lookup agrees with construction for every POI.
  for (std::size_t i = 0; i < pois.size(); ++i)
    EXPECT_EQ(division.cell_of(pois[i]), division.cell_of_poi(i));
  // Larger sigma never yields more cells than smaller sigma would; checked
  // against the next-coarser division.
  const geo::QuadtreeDivision coarser(pois, sigma * 2);
  EXPECT_LE(coarser.cell_count(), division.cell_count());
}

INSTANTIATE_TEST_SUITE_P(Sigmas, QuadtreeSigmaSweep,
                         ::testing::Values(10, 25, 50, 100, 200, 400));

// ---------- k-hop theorem properties across k ----------

class KHopKSweep : public ::testing::TestWithParam<int> {};

TEST_P(KHopKSweep, TheoremPropertiesHoldForAllK) {
  util::Rng rng(7);
  const int k = GetParam();
  for (int trial = 0; trial < 8; ++trial) {
    const graph::Graph g = graph::watts_strogatz(40, 4, 0.3, rng);
    const auto a = static_cast<graph::NodeId>(rng.index(40));
    const auto b = static_cast<graph::NodeId>((a + 1 + rng.index(38)) % 40);
    graph::KHopOptions options;
    options.k = k;
    const auto sub = graph::extract_khop_subgraph(g, a, b, options);
    // Paths bucketed by actual length; no edge shared across lengths.
    std::set<graph::Edge> seen;
    for (std::size_t bucket = 0; bucket < sub.paths_by_length.size();
         ++bucket) {
      std::set<graph::Edge> in_bucket;
      for (const auto& path : sub.paths_by_length[bucket]) {
        EXPECT_EQ(path.size(), bucket + 3);  // length = edges = bucket + 2
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
          in_bucket.insert(graph::Edge(path[i], path[i + 1]));
      }
      for (const auto& e : in_bucket) {
        EXPECT_FALSE(seen.count(e));
        seen.insert(e);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KHopKSweep, ::testing::Values(2, 3, 4, 5, 6));

// ---------- obfuscation ratio sweep on blurring ----------

class BlurRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlurRatioSweep, BlurringPreservesVolumeAndOwnership) {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 90;
  cfg.poi_count = 240;
  cfg.city_count = 3;
  cfg.weeks = 4;
  cfg.seed = 33;
  const auto world = data::generate_world(cfg);
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 40);
  util::Rng rng(11);
  const double ratio = GetParam();
  for (const data::Dataset& blurred :
       {data::blur_in_grid(world.dataset, ratio, division, rng),
        data::blur_cross_grid(world.dataset, ratio, division, rng)}) {
    EXPECT_EQ(blurred.checkin_count(), world.dataset.checkin_count());
    for (data::UserId u = 0; u < blurred.user_count(); ++u) {
      ASSERT_EQ(blurred.checkin_count(u), world.dataset.checkin_count(u));
      // Times are untouched by blurring.
      const auto before = world.dataset.trajectory(u);
      const auto after = blurred.trajectory(u);
      for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(before[i].time, after[i].time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, BlurRatioSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 1.0));

// ---------- JOC invariants under hiding ----------

TEST(JocProperties, HidingNeverIncreasesCellMass) {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 80;
  cfg.poi_count = 200;
  cfg.city_count = 2;
  cfg.weeks = 4;
  cfg.seed = 21;
  const auto world = data::generate_world(cfg);
  util::Rng rng(13);
  const data::Dataset hidden = data::hide_checkins(world.dataset, 0.4, rng);

  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 50);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(world.dataset.window_begin(),
                                world.dataset.window_end(),
                                7 * geo::kSecondsPerDay);
  const core::OccupancyIndex full(world.dataset, view, slots);
  const core::OccupancyIndex less(hidden, view, slots);

  core::JocOptions raw;
  raw.log_scale = false;
  std::vector<double> joc_full(full.joc_dim()), joc_less(less.joc_dim());
  ASSERT_EQ(full.joc_dim(), less.joc_dim());
  util::Rng pick(17);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a =
        static_cast<data::UserId>(pick.index(world.dataset.user_count()));
    const auto b =
        static_cast<data::UserId>(pick.index(world.dataset.user_count()));
    if (a == b) continue;
    core::build_joc(full, a, b, joc_full.data(), raw);
    core::build_joc(less, a, b, joc_less.data(), raw);
    for (std::size_t i = 0; i < joc_full.size(); ++i)
      EXPECT_LE(joc_less[i], joc_full[i] + 1e-12)
          << "hiding increased a JOC cell";
  }
}

// ---------- classifier monotonicity checks ----------

class KnnKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnnKSweep, ProbabilitiesAreValidForAllK) {
  util::Rng rng(19);
  nn::Matrix x(60, 3);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < 3; ++c)
      x(i, c) = rng.normal(y[i] ? 1.0 : -1.0, 1.0);
  }
  ml::KnnClassifier knn(GetParam());
  knn.fit(x, y);
  for (double p : knn.predict_proba(x)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    // Probability is a multiple of 1/min(k, n).
    const double unit = 1.0 / static_cast<double>(std::min<std::size_t>(
                                  GetParam(), 60));
    EXPECT_NEAR(std::round(p / unit) * unit, p, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnKSweep,
                         ::testing::Values(1, 3, 5, 9, 15, 61));

class SvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweep, TrainsAcrossBoxConstraints) {
  util::Rng rng(23);
  nn::Matrix x(80, 2);
  std::vector<int> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    y[i] = static_cast<int>(i % 2);
    x(i, 0) = rng.normal(y[i] ? 1.5 : -1.5, 0.7);
    x(i, 1) = rng.normal(0.0, 0.7);
  }
  ml::SvmConfig cfg;
  cfg.c = GetParam();
  ml::SvmClassifier svm(cfg);
  svm.fit(x, y);
  const auto pred = svm.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) correct += pred[i] == y[i];
  EXPECT_GT(correct, 70u) << "C=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Cs, SvmCSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0));

// ---------- candidate blocking properties ----------

// Superset property: the generated candidate set must contain every pair
// with at least one shared (cell, slot +/- tolerance) occurrence — blocking
// may keep extra pairs (hop expansion) but may never drop a co-occurring
// one. Checked across randomized worlds, divisions, and tolerances.
TEST(BlockingProperties, CandidatesAreSupersetOfCooccurringPairs) {
  for (const std::uint64_t seed : {3u, 9u, 27u}) {
    data::SyntheticWorldConfig cfg;
    cfg.user_count = 50 + 10 * (seed % 3);
    cfg.poi_count = 150;
    cfg.city_count = 3;
    cfg.weeks = 4;
    cfg.seed = seed;
    const auto world = data::generate_world(cfg);
    const geo::QuadtreeDivision quadtree(world.dataset.poi_coordinates(),
                                         20 + 10 * (seed % 2));
    const geo::QuadtreeDivisionView view(quadtree);
    const geo::TimeSlotting slots(world.dataset.window_begin(),
                                  world.dataset.window_end(),
                                  7 * geo::kSecondsPerDay);
    const block::CellIndex index(world.dataset, view, slots);
    for (const int tolerance : {0, 1, 2}) {
      block::BlockingConfig blocking;
      blocking.slot_tolerance = tolerance;
      blocking.hop_expansion = static_cast<int>(seed % 3);
      const std::vector<data::UserPair> candidates =
          block::generate_candidate_pairs(index, blocking);
      EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));

      std::vector<data::UserPair> universe;
      const auto n = static_cast<data::UserId>(world.dataset.user_count());
      for (data::UserId a = 0; a < n; ++a)
        for (data::UserId b = a + 1; b < n; ++b)
          universe.push_back({a, b});
      const graph::Graph strong = block::strong_cooccurrence_graph(index);
      const std::vector<char> keep =
          block::filter_universe(index, strong, universe, blocking);

      for (std::size_t i = 0; i < universe.size(); ++i) {
        const auto [a, b] = universe[i];
        if (!index.cooccur(a, b, tolerance)) continue;
        EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                       universe[i]))
            << "co-occurring pair (" << a << ", " << b
            << ") missing from candidates (seed " << seed << ", tol "
            << tolerance << ")";
        EXPECT_TRUE(keep[i]) << "co-occurring pair (" << a << ", " << b
                             << ") filtered out";
      }
      // And generation agrees with filtering: every generated candidate
      // inside the dense universe passes the filter.
      for (const data::UserPair& pair : candidates) {
        const std::size_t row =
            static_cast<std::size_t>(pair.first) * (2 * n - pair.first - 1) /
                2 +
            (pair.second - pair.first - 1);
        ASSERT_LT(row, universe.size());
        ASSERT_EQ(universe[row], pair);
        EXPECT_TRUE(keep[row]);
      }
    }
  }
}

// Cached features must be byte-identical to fresh builds: the same run
// executed with a cold external cache at 1 thread and at 4 threads must
// leave bit-equal JOC and presence rows behind (and bit-equal outputs),
// and the rows must match an independently built JOC.
TEST(BlockingProperties, CachedRowsAreByteIdenticalAcrossThreadCounts) {
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);

  auto run_cached = [&](block::FeatureCache& cache, std::size_t threads) {
    par::set_threads(threads);
    core::FriendSeekerConfig cfg = preset.seeker;
    cfg.feature_cache = &cache;
    core::FriendSeeker seeker(cfg);
    return seeker.run(experiment.dataset, experiment.split.train_pairs,
                      experiment.split.train_labels,
                      experiment.split.test_pairs);
  };
  block::FeatureCache cache1, cache4;
  const core::FriendSeekerResult r1 = run_cached(cache1, 1);
  const core::FriendSeekerResult r4 = run_cached(cache4, 4);
  par::set_threads(1);

  EXPECT_EQ(eval::result_digest(r1), eval::result_digest(r4));
  ASSERT_EQ(cache1.signature(), cache4.signature());
  ASSERT_GT(cache1.stats().joc_rows, 0u);

  // Independent JOC ground truth, built with the pipeline's division
  // parameters but none of its code path.
  const geo::QuadtreeDivision quadtree(experiment.dataset.poi_coordinates(),
                                       preset.seeker.sigma);
  const geo::QuadtreeDivisionView view(quadtree);
  const geo::TimeSlotting slots(
      experiment.dataset.window_begin(), experiment.dataset.window_end(),
      static_cast<geo::Timestamp>(preset.seeker.tau_days *
                                  geo::kSecondsPerDay));
  const core::OccupancyIndex occupancy(experiment.dataset, view, slots);
  ASSERT_EQ(occupancy.joc_dim(), cache1.joc_width());
  std::vector<double> fresh(occupancy.joc_dim());

  std::vector<data::UserPair> pairs = experiment.split.train_pairs;
  pairs.insert(pairs.end(), experiment.split.test_pairs.begin(),
               experiment.split.test_pairs.end());
  std::size_t compared = 0;
  for (const data::UserPair& raw : pairs) {
    const data::UserPair pair =
        data::make_pair_ordered(raw.first, raw.second);
    const double* a = cache1.find_joc(pair);
    const double* b = cache4.find_joc(pair);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(std::memcmp(a, b, cache1.joc_width() * sizeof(double)), 0)
          << "JOC row differs across thread counts";
      core::build_joc(occupancy, pair.first, pair.second, fresh.data());
      EXPECT_EQ(std::memcmp(a, fresh.data(),
                            cache1.joc_width() * sizeof(double)),
                0)
          << "cached JOC row differs from a fresh build";
      ++compared;
    }
    const double* pa = cache1.find_presence(pair);
    const double* pb = cache4.find_presence(pair);
    ASSERT_EQ(pa == nullptr, pb == nullptr);
    if (pa != nullptr)
      EXPECT_EQ(
          std::memcmp(pa, pb, cache1.presence_width() * sizeof(double)), 0)
          << "presence row differs across thread counts";
  }
  EXPECT_GT(compared, 0u);
}

// ---------- graph metric properties ----------

TEST(GraphProperties, EdgeChangeRatioIsSymmetricInDifference) {
  util::Rng rng(29);
  const graph::Graph a = graph::erdos_renyi(30, 0.2, rng);
  graph::Graph b = a;
  b.add_edge(0, 1) || b.remove_edge(0, 1);
  // Self-comparison is exactly zero.
  EXPECT_DOUBLE_EQ(graph::edge_change_ratio(a, a), 0.0);
  // Adding exactly one edge to a copy changes the count by one.
  graph::Graph c = a;
  graph::NodeId u = 0, v = 0;
  for (u = 0; u < 30 && v == 0; ++u)
    for (graph::NodeId w = u + 1; w < 30; ++w)
      if (!a.has_edge(u, w)) {
        c.add_edge(u, w);
        v = w;
        break;
      }
  ASSERT_NE(v, 0u);
  EXPECT_EQ(graph::Graph::edge_symmetric_difference(a, c), 1u);
}

// ---------- coupled hiding: nested evidence loss across rates ----------

// hide_checkins_coupled promises the hidden set at a lower rate is a strict
// subset of the hidden set at any higher rate (one fixed uniform draw per
// check-in). Checked exactly: the kept multiset at the higher rate must be
// contained in the kept multiset at the lower rate.
TEST(CoupledHidingProperties, HiddenSetsAreNestedAcrossRates) {
  data::SyntheticWorldConfig world = eval::bench_preset("tiny").world;
  world.user_count = 40;
  world.poi_count = 120;
  world.weeks = 2;
  const data::Dataset ds = data::generate_world(world).dataset;

  util::Rng rng(331);
  for (int trial = 0; trial < 3; ++trial) {
    const double low = rng.uniform() * 0.4 + 0.05;
    const double high = low + rng.uniform() * (0.9 - low);
    const std::uint64_t seed = 12345 + static_cast<std::uint64_t>(trial);
    const data::Dataset kept_low = data::hide_checkins_coupled(ds, low, seed);
    const data::Dataset kept_high =
        data::hide_checkins_coupled(ds, high, seed);

    EXPECT_LE(kept_high.checkin_count(), kept_low.checkin_count());
    std::multiset<std::tuple<data::UserId, data::PoiId, geo::Timestamp>>
        low_set;
    for (const data::CheckIn& c : kept_low.checkins())
      low_set.insert({c.user, c.poi, c.time});
    for (const data::CheckIn& c : kept_high.checkins()) {
      const auto it = low_set.find({c.user, c.poi, c.time});
      ASSERT_NE(it, low_set.end())
          << "check-in kept at rate " << high << " but hidden at " << low;
      low_set.erase(it);
    }
    // Nobody loses their last check-in at any rate.
    for (data::UserId u = 0; u < ds.user_count(); ++u)
      if (ds.checkin_count(u) > 0) EXPECT_GE(kept_high.checkin_count(u), 1u);
  }
}

// Under randomized hiding rates the candidate-universe recall — the
// fraction of true friend pairs blocking keeps in the scored universe — is
// monotonically non-increasing as the rate grows, with ZERO slack: coupled
// hiding nests the check-in sets, cell/strong co-occurrence is monotone in
// the data, and k-hop reachability is monotone in the strong graph, so a
// pair kept at a higher rate must be kept at every lower rate.
TEST(CoupledHidingProperties, CandidateRecallMonotoneUnderRisingHidingRate) {
  data::SyntheticWorldConfig cfg = eval::bench_preset("tiny").world;
  cfg.user_count = 60;
  cfg.poi_count = 150;
  cfg.weeks = 3;
  const data::Dataset ds = data::generate_world(cfg).dataset;

  // Division and slotting are fixed from the CLEAN dataset: the defense
  // removes check-ins, it does not move the attacker's grid.
  const geo::QuadtreeDivision division(ds.poi_coordinates(), 40);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(ds.window_begin(), ds.window_end(),
                                7 * geo::kSecondsPerDay);
  std::vector<data::UserPair> friends;
  for (const graph::Edge& e : ds.friendships().edges())
    friends.push_back({e.a, e.b});
  const block::BlockingConfig blocking;  // slot_tolerance 1, hops 3

  util::Rng rng(47);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> rates;
    for (int i = 0; i < 4; ++i) rates.push_back(rng.uniform() * 0.85);
    std::sort(rates.begin(), rates.end());

    std::vector<char> previous_keep;
    for (double rate : rates) {
      const data::Dataset hidden =
          data::hide_checkins_coupled(ds, rate, 555 + trial);
      const block::CellIndex index(hidden, view, slots);
      const graph::Graph strong = block::strong_cooccurrence_graph(index);
      const std::vector<char> keep =
          block::filter_universe(index, strong, friends, blocking);
      if (!previous_keep.empty()) {
        for (std::size_t i = 0; i < keep.size(); ++i)
          EXPECT_LE(keep[i], previous_keep[i])
              << "friend pair " << friends[i].first << "-"
              << friends[i].second
              << " entered the candidate universe as hiding grew to "
              << rate;
      }
      previous_keep = keep;
    }
  }
}

// End-to-end recall through the scenario runner under rising hiding rates
// on the fixed tiny preset. The evidence loss is exactly nested (above),
// but the classifier's operating point is re-tuned per cell, so the
// end-to-end curve gets a small band for retraining wobble — plus a strict
// bite check: the highest rate must cost recall vs the clean run.
TEST(CoupledHidingProperties, AttackRecallMonotoneUnderRisingHidingRate) {
  scenario::ScenarioConfig config;
  config.name = "hiding-monotone";
  config.worlds.push_back(scenario::WorldSpec{});  // tiny preset

  util::Rng rng(47);
  std::vector<double> rates = {0.0};
  for (int i = 0; i < 2; ++i) rates.push_back(rng.uniform() * 0.35 + 0.05);
  rates.push_back(rng.uniform() * 0.2 + 0.45);  // a rate that must bite
  std::sort(rates.begin(), rates.end());
  for (double rate : rates) {
    scenario::DefenseSpec defense;
    defense.mechanism = rate == 0.0 ? scenario::DefenseMechanism::kNone
                                    : scenario::DefenseMechanism::kHiding;
    defense.rate = rate;
    // Distinct labels even if two draws collide after rounding.
    defense.label = "hiding-" + std::to_string(rate);
    config.defenses.push_back(defense);
  }
  config.attacks.push_back(scenario::AttackSpec{});
  config.models.push_back(scenario::ModelSpec{});
  config.dynamics.push_back(scenario::DynamicsSpec{});

  const scenario::MatrixResult matrix = scenario::run_scenario(config);
  ASSERT_EQ(matrix.cells.size(), rates.size());
  constexpr double kSlack = 0.08;
  for (std::size_t i = 1; i < matrix.cells.size(); ++i) {
    EXPECT_LE(matrix.cells[i].quality.recall,
              matrix.cells[i - 1].quality.recall + kSlack)
        << "recall rose when hiding rate grew " << rates[i - 1] << " -> "
        << rates[i];
  }
  // The sweep must actually bite: the highest rate loses recall vs clean.
  EXPECT_LT(matrix.cells.back().quality.recall,
            matrix.cells.front().quality.recall);
}

}  // namespace
}  // namespace fs
