#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "ml/split.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace fs::ml {
namespace {

// ---------- metrics ----------

TEST(Metrics, ConfusionCounts) {
  const Confusion c = confusion({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_THROW(confusion({1}, {1, 0}), std::invalid_argument);
}

TEST(Metrics, PrfValues) {
  const Prf p = prf({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(p.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.recall, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.f1, 2.0 / 3.0);
}

TEST(Metrics, PrfDegenerateCases) {
  // No predicted positives.
  const Prf none = prf({1, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  EXPECT_DOUBLE_EQ(none.f1, 0.0);
  // No actual positives.
  const Prf no_pos = prf({0, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(no_pos.recall, 0.0);
  // Perfect.
  const Prf perfect = prf({1, 0, 1}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
}

TEST(Metrics, Accuracy) {
  EXPECT_DOUBLE_EQ(accuracy(confusion({1, 0, 1, 0}, {1, 0, 0, 0})), 0.75);
  EXPECT_DOUBLE_EQ(accuracy(Confusion{}), 0.0);
}

TEST(Metrics, Threshold) {
  EXPECT_EQ(threshold({0.2, 0.5, 0.9}, 0.5), (std::vector<int>{0, 1, 1}));
}

TEST(Metrics, TuneF1ThresholdFindsSeparator) {
  // Scores: positives at 0.8/0.9, negatives at 0.1/0.2 -> any cut in
  // (0.2, 0.8] gives F1 = 1; the tuner must find one.
  const TunedThreshold tuned =
      tune_f1_threshold({0.1, 0.8, 0.2, 0.9}, {0, 1, 0, 1});
  EXPECT_GT(tuned.threshold, 0.2);
  EXPECT_LE(tuned.threshold, 0.8);
  EXPECT_DOUBLE_EQ(tuned.train_f1, 1.0);
}

TEST(Metrics, TuneF1ThresholdOverlappingScores) {
  // Interleaved: best cut trades precision for recall.
  const std::vector<double> scores{0.1, 0.3, 0.35, 0.4, 0.7, 0.9};
  const std::vector<int> labels{0, 1, 0, 1, 1, 1};
  const TunedThreshold tuned = tune_f1_threshold(scores, labels);
  // Verify the reported F1 is actually achieved.
  std::vector<int> pred(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i)
    pred[i] = scores[i] >= tuned.threshold;
  EXPECT_NEAR(prf(labels, pred).f1, tuned.train_f1, 1e-12);
  // And that it is optimal among all candidate cuts.
  for (double cut : scores) {
    std::vector<int> p(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i)
      p[i] = scores[i] >= cut;
    EXPECT_LE(prf(labels, p).f1, tuned.train_f1 + 1e-12);
  }
}

TEST(Metrics, TuneF1ThresholdValidation) {
  EXPECT_THROW(tune_f1_threshold({}, {}), std::invalid_argument);
  EXPECT_THROW(tune_f1_threshold({0.5}, {1, 0}), std::invalid_argument);
}

// ---------- scaler ----------

TEST(Scaler, StandardizesColumns) {
  StandardScaler scaler;
  const nn::Matrix x = nn::Matrix::from_rows({{1, 10}, {3, 30}, {5, 50}});
  const nn::Matrix z = scaler.fit_transform(x);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 3; ++r) mean += z(r, c);
    mean /= 3;
    for (std::size_t r = 0; r < 3; ++r) var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Scaler, ConstantColumnsBecomeZero) {
  StandardScaler scaler;
  const nn::Matrix x = nn::Matrix::from_rows({{7, 1}, {7, 2}});
  const nn::Matrix z = scaler.fit_transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(1, 0), 0.0);
}

TEST(Scaler, TransformBeforeFitThrows) {
  StandardScaler scaler;
  const nn::Matrix x(1, 2);
  EXPECT_THROW(scaler.transform(x), std::logic_error);
  StandardScaler fitted;
  fitted.fit(nn::Matrix(2, 3));
  EXPECT_THROW(fitted.transform(nn::Matrix(2, 4)), std::invalid_argument);
}

// ---------- KNN ----------

void blobs_2d(nn::Matrix& x, std::vector<int>& y, std::size_t n,
              util::Rng& rng, double separation = 3.0) {
  x = nn::Matrix(n, 2);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    const double cx = y[i] ? separation : 0.0;
    x(i, 0) = cx + rng.normal(0.0, 0.5);
    x(i, 1) = rng.normal(0.0, 0.5);
  }
}

TEST(Knn, ClassifiesSeparatedBlobs) {
  util::Rng rng(61);
  nn::Matrix train_x, test_x;
  std::vector<int> train_y, test_y;
  blobs_2d(train_x, train_y, 100, rng);
  blobs_2d(test_x, test_y, 50, rng);
  KnnClassifier knn(5);
  knn.fit(train_x, train_y);
  const auto pred = knn.predict(test_x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    correct += pred[i] == test_y[i];
  EXPECT_GT(correct, 47u);
}

TEST(Knn, ExactNeighborProbability) {
  // Query sits next to 2 positives and 1 negative with k = 3.
  const nn::Matrix train = nn::Matrix::from_rows(
      {{0.0}, {0.1}, {0.2}, {10.0}, {11.0}});
  KnnClassifier knn(3);
  knn.fit(train, {1, 1, 0, 0, 0});
  const nn::Matrix query = nn::Matrix::from_rows({{0.05}});
  EXPECT_NEAR(knn.predict_proba(query)[0], 2.0 / 3.0, 1e-12);
}

TEST(Knn, KLargerThanTrainSetUsesAll) {
  const nn::Matrix train = nn::Matrix::from_rows({{0.0}, {1.0}});
  KnnClassifier knn(10);
  knn.fit(train, {1, 0});
  const nn::Matrix query = nn::Matrix::from_rows({{0.5}});
  EXPECT_NEAR(knn.predict_proba(query)[0], 0.5, 1e-12);
}

TEST(Knn, Validation) {
  EXPECT_THROW(KnnClassifier(0), std::invalid_argument);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.fit(nn::Matrix(2, 2), {1}), std::invalid_argument);
  EXPECT_THROW(knn.predict(nn::Matrix(1, 2)), std::logic_error);
}

/// Clustered data shaped like scaled presence codes: unit-variance columns,
/// two overlapping blobs, plus exact-duplicate rows to exercise the
/// training-order tie rule under both distance paths.
void presence_like(nn::Matrix& x, std::vector<int>& y, std::size_t n,
                   std::size_t dim, util::Rng& rng) {
  x = nn::Matrix(n, dim);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < dim; ++c)
      x(i, c) = rng.normal(y[i] ? 0.8 : -0.8, 1.0);
  }
  // Duplicate a handful of rows verbatim (distance ties are real ties).
  for (std::size_t i = 0; i + 10 < n && i < 8; ++i)
    for (std::size_t c = 0; c < dim; ++c) x(n - 1 - i, c) = x(i, c);
}

TEST(Knn, QuantizedPathMatchesFullPrecisionBitForBit) {
  // The int8 lower bound only ever PRUNES; survivors are re-ranked with
  // the same f64 expression the default path uses. When the bound is
  // admissible (always, up to the slack margin) the neighbor sets — and
  // therefore the returned probability doubles — are identical.
  util::Rng rng(2026);
  nn::Matrix train_x, test_x;
  std::vector<int> train_y, test_y;
  presence_like(train_x, train_y, 400, 16, rng);
  presence_like(test_x, test_y, 200, 16, rng);

  KnnClassifier exact(7);
  exact.fit(train_x, train_y);
  const std::vector<double> exact_probs = exact.predict_proba(test_x);

  KnnClassifier quant(7);
  quant.set_quantize(true);
  quant.fit(train_x, train_y);
  EXPECT_TRUE(quant.quantize());
  const std::vector<double> quant_probs = quant.predict_proba(test_x);

  ASSERT_EQ(exact_probs.size(), quant_probs.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < exact_probs.size(); ++i) {
    // Byte-identical, not approximately equal: same neighbors, same count.
    if (std::memcmp(&exact_probs[i], &quant_probs[i], sizeof(double)) == 0)
      ++agree;
  }
  // recall@decision contract: >= 0.99 agreement (here the bound is tight
  // enough that every query agrees; the margin guards rounding edges).
  EXPECT_GE(static_cast<double>(agree),
            0.99 * static_cast<double>(exact_probs.size()));

  // The engine must actually prune: exact evaluations well under n per
  // query on clustered data, never more than the scan ceiling.
  const KnnQuantStats& stats = quant.quant_stats();
  EXPECT_EQ(stats.rows_scanned, test_x.rows() * train_x.rows());
  EXPECT_LE(stats.exact_evals, stats.rows_scanned);
  EXPECT_LT(stats.exact_evals, stats.rows_scanned / 2)
      << "lower bound pruned less than half the candidate rows";
}

TEST(Knn, QuantizeToggleAndRebuild) {
  util::Rng rng(7);
  nn::Matrix x;
  std::vector<int> y;
  presence_like(x, y, 64, 4, rng);
  KnnClassifier knn(3);
  knn.fit(x, y);
  const std::vector<double> before = knn.predict_proba(x);
  // Enable AFTER fit: the index is built from the stored features.
  knn.set_quantize(true);
  const std::vector<double> during = knn.predict_proba(x);
  knn.set_quantize(false);
  const std::vector<double> after = knn.predict_proba(x);
  ASSERT_EQ(before.size(), during.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], during[i]) << "row " << i;
    EXPECT_EQ(before[i], after[i]) << "row " << i;
  }
}

TEST(Knn, QuantizedHandlesDegenerateDimensions) {
  // Constant columns quantize to scale-0 dimensions; they must contribute
  // an exact (not inflated) bound so nothing is mis-pruned.
  nn::Matrix train = nn::Matrix::from_rows({{0.0, 5.0},
                                            {0.1, 5.0},
                                            {0.2, 5.0},
                                            {10.0, 5.0},
                                            {11.0, 5.0}});
  KnnClassifier knn(3);
  knn.set_quantize(true);
  knn.fit(std::move(train), {1, 1, 0, 0, 0});
  const nn::Matrix query = nn::Matrix::from_rows({{0.05, 5.0}});
  EXPECT_NEAR(knn.predict_proba(query)[0], 2.0 / 3.0, 1e-12);
}

TEST(Knn, QuantizedSerializationRoundTripDropsIndexNotBehavior) {
  // KNN0 bytes are identical with or without quantize (runtime-only knob),
  // and a loaded model starts on the full-precision path.
  util::Rng rng(11);
  nn::Matrix x;
  std::vector<int> y;
  presence_like(x, y, 32, 3, rng);
  KnnClassifier knn(3);
  knn.set_quantize(true);
  knn.fit(x, y);

  std::ostringstream quant_bytes;
  {
    util::BinaryWriter w(quant_bytes);
    knn.save(w);
  }
  KnnClassifier plain(3);
  plain.fit(x, y);
  std::ostringstream plain_bytes;
  {
    util::BinaryWriter w(plain_bytes);
    plain.save(w);
  }
  EXPECT_EQ(quant_bytes.str(), plain_bytes.str());

  std::istringstream in(quant_bytes.str());
  util::BinaryReader r(in);
  KnnClassifier loaded = KnnClassifier::load(r);
  EXPECT_FALSE(loaded.quantize());
  loaded.set_quantize(true);
  const std::vector<double> a = knn.predict_proba(x);
  const std::vector<double> b = loaded.predict_proba(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------- SVM ----------

TEST(Svm, LinearlySeparableBlobs) {
  util::Rng rng(67);
  nn::Matrix train_x, test_x;
  std::vector<int> train_y, test_y;
  blobs_2d(train_x, train_y, 120, rng);
  blobs_2d(test_x, test_y, 60, rng);
  SvmClassifier svm;
  svm.fit(train_x, train_y);
  const auto pred = svm.predict(test_x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    correct += pred[i] == test_y[i];
  EXPECT_GT(correct, 56u);
  EXPECT_GT(svm.support_vector_count(), 0u);
}

TEST(Svm, RbfSolvesXor) {
  // XOR is not linearly separable; the RBF kernel must handle it.
  util::Rng rng(71);
  nn::Matrix x(200, 2);
  std::vector<int> y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const int qx = static_cast<int>(rng.chance(0.5));
    const int qy = static_cast<int>(rng.chance(0.5));
    x(i, 0) = qx * 2.0 - 1.0 + rng.normal(0.0, 0.2);
    x(i, 1) = qy * 2.0 - 1.0 + rng.normal(0.0, 0.2);
    y[i] = qx ^ qy;
  }
  SvmConfig cfg;
  cfg.c = 5.0;
  cfg.max_iterations = 400;
  SvmClassifier svm(cfg);
  svm.fit(x, y);
  const auto pred = svm.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) correct += pred[i] == y[i];
  EXPECT_GT(correct, 185u);
}

TEST(Svm, DecisionSignMatchesPrediction) {
  util::Rng rng(73);
  nn::Matrix x;
  std::vector<int> y;
  blobs_2d(x, y, 60, rng);
  SvmClassifier svm;
  svm.fit(x, y);
  const auto decisions = svm.decision(x);
  const auto pred = svm.predict(x);
  for (std::size_t i = 0; i < pred.size(); ++i)
    EXPECT_EQ(pred[i], decisions[i] > 0.0 ? 1 : 0);
}

TEST(Svm, ProbaIsMonotoneInDecision) {
  util::Rng rng(79);
  nn::Matrix x;
  std::vector<int> y;
  blobs_2d(x, y, 60, rng);
  SvmClassifier svm;
  svm.fit(x, y);
  const auto decisions = svm.decision(x);
  const auto probas = svm.predict_proba(x);
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    if (decisions[i] > decisions[i - 1])
      EXPECT_GE(probas[i], probas[i - 1] - 1e-12);
  }
}

TEST(Svm, Validation) {
  SvmClassifier svm;
  EXPECT_THROW(svm.fit(nn::Matrix(2, 2), {1}), std::invalid_argument);
  EXPECT_THROW(svm.fit(nn::Matrix(2, 2), {1, 1}), std::invalid_argument);
  EXPECT_THROW(svm.decision(nn::Matrix(1, 2)), std::logic_error);
  SvmConfig tiny_cap;
  tiny_cap.max_train_rows = 4;
  SvmClassifier capped(tiny_cap);
  EXPECT_THROW(capped.fit(nn::Matrix(5, 2), {0, 1, 0, 1, 0}),
               std::invalid_argument);
  SvmConfig bad_c;
  bad_c.c = 0.0;
  EXPECT_THROW(SvmClassifier{bad_c}, std::invalid_argument);
}

TEST(Svm, GammaAutoIsPositive) {
  util::Rng rng(83);
  nn::Matrix x;
  std::vector<int> y;
  blobs_2d(x, y, 40, rng);
  SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_GT(svm.gamma(), 0.0);
}

// ---------- split ----------

TEST(Split, StratifiedPreservesRatio) {
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i < 30 ? 1 : 0);
  util::Rng rng(89);
  const SplitIndices idx = stratified_split(labels, 0.7, rng);
  EXPECT_EQ(idx.train.size() + idx.test.size(), 100u);
  std::size_t train_pos = 0;
  for (std::size_t i : idx.train) train_pos += labels[i];
  std::size_t test_pos = 0;
  for (std::size_t i : idx.test) test_pos += labels[i];
  EXPECT_EQ(train_pos, 21u);  // exactly 70 % of 30
  EXPECT_EQ(test_pos, 9u);
}

TEST(Split, IndicesAreDisjointAndComplete) {
  std::vector<int> labels(50, 0);
  for (int i = 0; i < 20; ++i) labels[static_cast<std::size_t>(i)] = 1;
  util::Rng rng(97);
  const SplitIndices idx = stratified_split(labels, 0.6, rng);
  std::vector<char> seen(50, 0);
  for (std::size_t i : idx.train) {
    EXPECT_FALSE(seen[i]);
    seen[i] = 1;
  }
  for (std::size_t i : idx.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = 1;
  }
  for (char s : seen) EXPECT_TRUE(s);
}

TEST(Split, Validation) {
  util::Rng rng(101);
  EXPECT_THROW(stratified_split({1, 0}, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split({1, 0}, 1.0, rng), std::invalid_argument);
}

TEST(Split, TakeSelects) {
  const std::vector<int> v{10, 20, 30};
  EXPECT_EQ(take(v, {2, 0}), (std::vector<int>{30, 10}));
}

}  // namespace
}  // namespace fs::ml
