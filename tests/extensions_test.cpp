// Tests for the extension components: logistic regression, Platt
// calibration, node2vec walks, extra link-prediction heuristics, argument
// parsing, and the FriendGuard defense.
#include <gtest/gtest.h>

#include <cmath>

#include "data/defense.h"
#include "data/synthetic.h"
#include "embed/walks.h"
#include "graph/generators.h"
#include "graph/heuristics.h"
#include "ml/logistic.h"
#include "ml/svm.h"
#include "util/args.h"

namespace fs {
namespace {

// ---------- logistic regression ----------

void blobs(nn::Matrix& x, std::vector<int>& y, std::size_t n,
           util::Rng& rng) {
  x = nn::Matrix(n, 3);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < 3; ++c)
      x(i, c) = rng.normal(y[i] ? 1.2 : -1.2, 1.0);
  }
}

TEST(Logistic, SeparatesBlobs) {
  util::Rng rng(3);
  nn::Matrix train_x, test_x;
  std::vector<int> train_y, test_y;
  blobs(train_x, train_y, 200, rng);
  blobs(test_x, test_y, 100, rng);
  ml::LogisticClassifier clf;
  clf.fit(train_x, train_y);
  const auto pred = clf.predict(test_x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    correct += pred[i] == test_y[i];
  EXPECT_GT(correct, 85u);
}

TEST(Logistic, ProbaMatchesSigmoidOfDecision) {
  util::Rng rng(5);
  nn::Matrix x;
  std::vector<int> y;
  blobs(x, y, 60, rng);
  ml::LogisticClassifier clf;
  clf.fit(x, y);
  const auto d = clf.decision(x);
  const auto p = clf.predict_proba(x);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_NEAR(p[i], 1.0 / (1.0 + std::exp(-d[i])), 1e-12);
}

TEST(Logistic, L2ShrinksWeights) {
  util::Rng rng(7);
  nn::Matrix x;
  std::vector<int> y;
  blobs(x, y, 100, rng);
  ml::LogisticConfig weak;
  weak.l2 = 1e-6;
  ml::LogisticConfig strong;
  strong.l2 = 1.0;
  ml::LogisticClassifier a(weak), b(strong);
  a.fit(x, y);
  b.fit(x, y);
  double norm_a = 0.0, norm_b = 0.0;
  for (double w : a.weights()) norm_a += w * w;
  for (double w : b.weights()) norm_b += w * w;
  EXPECT_LT(norm_b, norm_a);
}

TEST(Logistic, Validation) {
  ml::LogisticConfig bad;
  bad.learning_rate = 0.0;
  EXPECT_THROW(ml::LogisticClassifier{bad}, std::invalid_argument);
  ml::LogisticClassifier clf;
  EXPECT_THROW(clf.fit(nn::Matrix(2, 2), {1}), std::invalid_argument);
  EXPECT_THROW(clf.decision(nn::Matrix(1, 2)), std::logic_error);
}

// ---------- Platt calibration ----------

TEST(Platt, CalibratedProbabilitiesAreOrderedAndInformative) {
  util::Rng rng(11);
  nn::Matrix x;
  std::vector<int> y;
  blobs(x, y, 200, rng);
  ml::SvmClassifier svm;
  svm.fit(x, y);
  svm.calibrate(x, y);
  EXPECT_TRUE(svm.calibrated());
  // Platt slope should be negative (higher decision -> higher P(y=1)).
  EXPECT_LT(svm.platt_a(), 0.0);
  const auto proba = svm.predict_proba(x);
  // Mean probability of positives must exceed that of negatives clearly.
  double pos = 0.0, neg = 0.0;
  std::size_t npos = 0, nneg = 0;
  for (std::size_t i = 0; i < proba.size(); ++i) {
    if (y[i]) {
      pos += proba[i];
      ++npos;
    } else {
      neg += proba[i];
      ++nneg;
    }
  }
  EXPECT_GT(pos / npos, neg / nneg + 0.3);
}

TEST(Platt, CalibrationImprovesLogLoss) {
  util::Rng rng(13);
  nn::Matrix x, test_x;
  std::vector<int> y, test_y;
  blobs(x, y, 200, rng);
  blobs(test_x, test_y, 100, rng);
  ml::SvmClassifier svm;
  svm.fit(x, y);
  auto log_loss = [&](const std::vector<double>& p) {
    double total = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double q = std::clamp(p[i], 1e-9, 1.0 - 1e-9);
      total += test_y[i] ? -std::log(q) : -std::log(1.0 - q);
    }
    return total / static_cast<double>(p.size());
  };
  const double before = log_loss(svm.predict_proba(test_x));
  svm.calibrate(x, y);
  const double after = log_loss(svm.predict_proba(test_x));
  EXPECT_LE(after, before + 0.02);
}

TEST(Platt, RequiresBothClasses) {
  util::Rng rng(17);
  nn::Matrix x;
  std::vector<int> y;
  blobs(x, y, 40, rng);
  ml::SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_THROW(svm.calibrate(x, std::vector<int>(40, 1)),
               std::invalid_argument);
}

// ---------- node2vec walks ----------

TEST(Node2Vec, UnbiasedConfigMatchesPlainWalkStatistics) {
  embed::WeightedGraph g(4);
  g.add_weight(0, 1, 1.0);
  g.add_weight(1, 2, 1.0);
  g.add_weight(2, 3, 1.0);
  g.add_weight(3, 0, 1.0);
  embed::Node2VecConfig cfg;  // p = q = 1
  cfg.walks.walks_per_node = 5;
  cfg.walks.walk_length = 9;
  util::Rng rng(19);
  const auto corpus = generate_node2vec_walks(g, cfg, rng);
  EXPECT_EQ(corpus.size(), 20u);
  for (const auto& walk : corpus) EXPECT_EQ(walk.size(), 9u);
}

TEST(Node2Vec, LowPEncouragesBacktracking) {
  // Path graph 0-1-2. From 1 (arrived from 0), low p should return to 0
  // far more often than continue to 2.
  embed::WeightedGraph g(3);
  g.add_weight(0, 1, 1.0);
  g.add_weight(1, 2, 1.0);
  util::Rng rng(23);
  embed::Node2VecConfig cfg;
  cfg.p = 0.05;
  cfg.q = 1.0;
  cfg.walks.walks_per_node = 1;
  cfg.walks.walk_length = 3;
  std::size_t returns = 0, trials = 0;
  for (int i = 0; i < 600; ++i) {
    const auto corpus = generate_node2vec_walks(g, cfg, rng);
    for (const auto& walk : corpus) {
      if (walk.size() < 3 || walk[0] != 0) continue;
      // walk: 0 -> 1 -> ?, the third vertex shows the bias.
      ++trials;
      returns += walk[2] == 0;
    }
  }
  ASSERT_GT(trials, 100u);
  EXPECT_GT(static_cast<double>(returns) / static_cast<double>(trials),
            0.85);
}

TEST(Node2Vec, HighQKeepsWalksLocal) {
  // Barbell-ish: two triangles joined by a bridge. q >> 1 penalizes
  // leaving the current neighborhood, so cross-bridge transitions from a
  // triangle should be rarer than with q = 1.
  embed::WeightedGraph g(6);
  g.add_weight(0, 1, 1.0);
  g.add_weight(1, 2, 1.0);
  g.add_weight(0, 2, 1.0);
  g.add_weight(3, 4, 1.0);
  g.add_weight(4, 5, 1.0);
  g.add_weight(3, 5, 1.0);
  g.add_weight(2, 3, 1.0);  // bridge
  auto cross_rate = [&](double q) {
    util::Rng rng(29);
    embed::Node2VecConfig cfg;
    cfg.q = q;
    cfg.walks.walks_per_node = 50;
    cfg.walks.walk_length = 10;
    const auto corpus = generate_node2vec_walks(g, cfg, rng);
    std::size_t cross = 0, steps = 0;
    for (const auto& walk : corpus)
      for (std::size_t i = 1; i + 1 < walk.size(); ++i) {
        ++steps;
        const bool was_left = walk[i] <= 2;
        const bool now_left = walk[i + 1] <= 2;
        cross += was_left != now_left;
      }
    return static_cast<double>(cross) / static_cast<double>(steps);
  };
  EXPECT_LT(cross_rate(8.0), cross_rate(1.0));
}

TEST(Node2Vec, RejectsBadParameters) {
  embed::WeightedGraph g(2);
  g.add_weight(0, 1, 1.0);
  util::Rng rng(31);
  embed::Node2VecConfig cfg;
  cfg.p = 0.0;
  EXPECT_THROW(generate_node2vec_walks(g, cfg, rng), std::invalid_argument);
}

TEST(WeightedGraphExtensions, HasEdge) {
  embed::WeightedGraph g(3);
  g.add_weight(0, 1, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

// ---------- extra heuristics ----------

TEST(Heuristics, ResourceAllocation) {
  graph::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);  // common neighbor 2, degree 2
  g.add_edge(2, 4);  // degree(2) = 3
  g.add_edge(0, 3);
  g.add_edge(1, 3);  // common neighbor 3, degree 2
  EXPECT_NEAR(graph::resource_allocation_score(g, 0, 1),
              1.0 / 3.0 + 1.0 / 2.0, 1e-12);
}

TEST(Heuristics, LocalPathIndex) {
  // 0-2-1 gives one 2-path; 0-3-4-1 one 3-path.
  graph::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  EXPECT_NEAR(graph::local_path_score(g, 0, 1, 0.1), 1.0 + 0.1 * 1.0,
              1e-12);
}

// ---------- ArgParser ----------

TEST(Args, ParsesOptionsFlagsAndPositionals) {
  util::ArgParser args;
  args.add_option("alpha", "1.0", "");
  args.add_option("name", "x", "");
  args.add_flag("verbose", "");
  const char* argv[] = {"prog", "file1", "--alpha", "2.5",
                        "--name=bob", "--verbose", "file2"};
  args.parse(7, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha"), 2.5);
  EXPECT_EQ(args.get("name"), "bob");
  EXPECT_TRUE(args.get_flag("verbose"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Args, DefaultsApplyWhenAbsent) {
  util::ArgParser args;
  args.add_option("k", "3", "");
  args.add_flag("quiet", "");
  const char* argv[] = {"prog"};
  args.parse(1, argv);
  EXPECT_EQ(args.get_int("k"), 3);
  EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(Args, RejectsUnknownAndMalformed) {
  util::ArgParser args;
  args.add_option("k", "3", "");
  args.add_flag("quiet", "");
  const char* unknown[] = {"prog", "--mystery", "1"};
  EXPECT_THROW(args.parse(3, unknown), std::invalid_argument);
  util::ArgParser args2;
  args2.add_option("k", "3", "");
  const char* missing[] = {"prog", "--k"};
  EXPECT_THROW(args2.parse(2, missing), std::invalid_argument);
  util::ArgParser args3;
  args3.add_flag("quiet", "");
  const char* flag_value[] = {"prog", "--quiet=1"};
  EXPECT_THROW(args3.parse(2, flag_value), std::invalid_argument);
}

// ---------- FriendGuard defense ----------

data::SyntheticWorldConfig guard_world() {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 140;
  cfg.poi_count = 350;
  cfg.city_count = 3;
  cfg.weeks = 6;
  cfg.seed = 123;
  return cfg;
}

TEST(FriendGuard, RespectsBudgetAndPreservesCounts) {
  const auto world = data::generate_world(guard_world());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 60);
  data::FriendGuardConfig cfg;
  cfg.budget = 0.25;
  const data::Dataset protected_ds =
      data::friend_guard(world.dataset, division, cfg);
  EXPECT_EQ(protected_ds.checkin_count(), world.dataset.checkin_count());
  EXPECT_EQ(protected_ds.user_count(), world.dataset.user_count());

  // No more than budget fraction of records perturbed.
  std::multiset<std::tuple<data::UserId, data::PoiId, geo::Timestamp>>
      originals;
  for (const auto& c : world.dataset.checkins())
    originals.insert({c.user, c.poi, c.time});
  std::size_t unchanged = 0;
  for (const auto& c : protected_ds.checkins()) {
    auto it = originals.find({c.user, c.poi, c.time});
    if (it != originals.end()) {
      originals.erase(it);
      ++unchanged;
    }
  }
  const double perturbed =
      1.0 - static_cast<double>(unchanged) /
                static_cast<double>(world.dataset.checkin_count());
  EXPECT_LE(perturbed, 0.26);
}

TEST(FriendGuard, ZeroBudgetIsIdentity) {
  const auto world = data::generate_world(guard_world());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 60);
  data::FriendGuardConfig cfg;
  cfg.budget = 0.0;
  const data::Dataset protected_ds =
      data::friend_guard(world.dataset, division, cfg);
  for (std::size_t i = 0; i < world.dataset.checkins().size(); ++i) {
    EXPECT_EQ(protected_ds.checkins()[i].poi,
              world.dataset.checkins()[i].poi);
    EXPECT_EQ(protected_ds.checkins()[i].time,
              world.dataset.checkins()[i].time);
  }
}

TEST(FriendGuard, EvidenceScoresTargetCoOccurrences) {
  // Two users meeting at a rare POI must out-score a lone check-in.
  std::vector<data::Poi> pois{{{0.0, 0.0}, 0}, {{1.0, 1.0}, 0}};
  std::vector<data::CheckIn> checkins{
      {0, 0, 1000, {0.0, 0.0}},   // meeting at rare POI
      {1, 0, 2000, {0.0, 0.0}},   // meeting at rare POI
      {2, 1, 5000, {1.0, 1.0}},   // lone visit
  };
  graph::Graph g(3);
  const auto ds = data::Dataset::build(3, std::move(pois),
                                       std::move(checkins), g);
  const auto scores = data::checkin_evidence_scores(ds, {});
  // The dataset is re-sorted by (user, time); user 2's record is last.
  EXPECT_GT(scores[0], scores[2]);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(FriendGuard, RejectsBadBudget) {
  const auto world = data::generate_world(guard_world());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 60);
  data::FriendGuardConfig cfg;
  cfg.budget = 1.5;
  EXPECT_THROW(data::friend_guard(world.dataset, division, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace fs
