// fs::scenario: config parsing/validation, grid expansion, runner
// determinism, the defense=none differential against a direct attack
// invocation, and the artifact validate/diff contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "eval/digest.h"
#include "eval/harness.h"
#include "obs/json.h"
#include "scenario/artifact.h"
#include "scenario/config.h"
#include "scenario/options.h"
#include "scenario/runner.h"
#include "util/error.h"

namespace fs {
namespace {

namespace json = obs::json;
using scenario::ScenarioConfig;

/// A micro world every run-based test shares: seconds, not minutes.
constexpr const char* kMicroWorld =
    R"({"preset": "tiny", "users": 40, "pois": 120, "weeks": 2})";

ScenarioConfig micro_config(const std::string& defense_axis) {
  return scenario::parse_scenario_config_text(
      std::string(R"({"name": "micro", "axes": {"world": [)") + kMicroWorld +
      R"(], "defense": )" + defense_axis + "}}");
}

// ---- OptionReader ----

TEST(ScenarioOptions, RejectsUnknownKeysNamingThem) {
  const json::Value doc = json::parse(R"({"rate": 0.2, "rtae": 0.3})");
  scenario::OptionReader reader(doc, "defense axis element 0");
  reader.get_number("rate", 0.0, 0.0, 1.0);
  try {
    reader.finish();
    FAIL() << "unknown key not rejected";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("'rtae'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("defense axis element 0"),
              std::string::npos)
        << e.what();
    // The error lists the accepted spelling set, so the fix is in the
    // message.
    EXPECT_NE(std::string(e.what()).find("rate"), std::string::npos);
  }
}

TEST(ScenarioOptions, TypeAndRangeChecked) {
  const json::Value doc =
      json::parse(R"({"a": "x", "b": 1.5, "c": 2.25, "d": 1})");
  scenario::OptionReader reader(doc, "test");
  EXPECT_THROW(reader.get_number("a", 0, 0, 1), ParseError);
  EXPECT_THROW(reader.get_number("b", 0, 0, 1), ParseError);
  EXPECT_THROW(reader.get_int("c", 0, 0, 10), ParseError);
  EXPECT_THROW(reader.get_bool("d", false), ParseError);
  EXPECT_THROW(reader.get_enum("a", "y", {"y", "z"}), ParseError);
}

// ---- Config parsing ----

TEST(ScenarioConfigTest, ParsesAndRoundTrips) {
  const std::string text = R"({
    "schema": "fs-scenario-config", "schema_version": 1,
    "name": "rt", "seed": 11,
    "axes": {
      "world": [{"preset": "gowalla", "users": 50, "cyber_fraction": 0.4}],
      "defense": [{"mechanism": "hiding", "rate": 0.25},
                  {"mechanism": "blur-cross", "rate": 0.3, "grid_sigma": 60}],
      "attack": [{"blocking": "on", "knn_quantize": true, "shards": 2}],
      "model": [{"tau_days": 3.5, "slot_tolerance": 1,
                 "predicate": "cooccur"}],
      "dynamics": [{"drift": 0.5}]
    },
    "tolerance": {"f1": 0.05}
  })";
  const ScenarioConfig config = scenario::parse_scenario_config_text(text);
  EXPECT_EQ(config.name, "rt");
  EXPECT_EQ(config.seed, 11u);
  ASSERT_EQ(config.defenses.size(), 2u);
  EXPECT_EQ(config.defenses[0].mechanism,
            scenario::DefenseMechanism::kHiding);
  EXPECT_DOUBLE_EQ(config.defenses[0].rate, 0.25);
  EXPECT_EQ(config.defenses[1].grid_sigma, 60u);
  EXPECT_TRUE(config.attacks[0].knn_quantize);
  EXPECT_EQ(config.attacks[0].shards, 2u);
  EXPECT_EQ(config.models[0].predicate,
            scenario::CandidatePredicate::kCooccur);
  EXPECT_DOUBLE_EQ(config.dynamics[0].drift, 0.5);
  EXPECT_DOUBLE_EQ(config.tolerance.f1, 0.05);
  EXPECT_DOUBLE_EQ(config.tolerance.auc, 0.08);  // untouched default

  // Normalized dump -> parse -> dump is a fixed point.
  const std::string once = scenario::scenario_config_to_json(config).dump(2);
  const ScenarioConfig reparsed =
      scenario::parse_scenario_config(json::parse(once));
  EXPECT_EQ(scenario::scenario_config_to_json(reparsed).dump(2), once);
  EXPECT_EQ(scenario::config_fingerprint(config),
            scenario::config_fingerprint(reparsed));
}

TEST(ScenarioConfigTest, MissingAxesDefaultToIdentity) {
  const ScenarioConfig config =
      scenario::parse_scenario_config_text(R"({"name": "bare"})");
  EXPECT_EQ(scenario::expand_grid(config).size(), 1u);
  const auto cells = scenario::expand_grid(config);
  EXPECT_EQ(scenario::defense_label(cells[0].defense), "none");
}

TEST(ScenarioConfigTest, RejectsUnknownKeysEverywhere) {
  EXPECT_THROW(scenario::parse_scenario_config_text(R"({"nmae": "x"})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"wrold": []}})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"defense": [{"mechnism": "hiding"}]}})"),
               ParseError);
}

TEST(ScenarioConfigTest, RejectsOutOfRangeAndBadEnums) {
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"defense": [{"rate": 1.5}]}})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"dynamics": [{"drift": -0.1}]}})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"world": [{"users": 7.5}]}})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"world": [{"preset": "foursquare"}]}})"),
               ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"attack": [{"blocking": "maybe"}]}})"),
               ParseError);
  EXPECT_THROW(
      scenario::parse_scenario_config_text(R"({"schema": "fs-other"})"),
      ParseError);
  EXPECT_THROW(scenario::parse_scenario_config_text(
                   R"({"axes": {"defense": []}})"),
               ParseError);
}

TEST(ScenarioConfigTest, GridIsAxisCardinalityProduct) {
  const ScenarioConfig config = scenario::parse_scenario_config_text(R"({
    "axes": {
      "world": [{"preset": "tiny"}, {"preset": "gowalla"}],
      "defense": [{"mechanism": "none"}, {"mechanism": "hiding", "rate": 0.2},
                  {"mechanism": "hiding", "rate": 0.4}],
      "attack": [{"blocking": "on"}, {"blocking": "off"}],
      "model": [{}, {"tau_days": 3.5}]
    }
  })");
  const auto cells = scenario::expand_grid(config);
  ASSERT_EQ(cells.size(), 2u * 3u * 2u * 2u * 1u);  // 24

  // World-major order, dynamics innermost, ids unique, index == position.
  EXPECT_EQ(scenario::world_label(cells[0].world), "tiny");
  EXPECT_EQ(scenario::world_label(cells[11].world), "tiny");
  EXPECT_EQ(scenario::world_label(cells[12].world), "gowalla");
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    ids.push_back(cells[i].id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

// ---- Runner determinism ----

TEST(ScenarioRunner, FingerprintsAndResultsStableAcrossRunsAndThreads) {
  const ScenarioConfig config = micro_config(
      R"([{"mechanism": "none"}, {"mechanism": "hiding", "rate": 0.3}])");

  scenario::RunOptions one_thread;
  one_thread.threads = 1;
  scenario::RunOptions three_threads;
  three_threads.threads = 3;

  const scenario::MatrixResult a = scenario::run_scenario(config, one_thread);
  const scenario::MatrixResult b = scenario::run_scenario(config, one_thread);
  const scenario::MatrixResult c =
      scenario::run_scenario(config, three_threads);

  ASSERT_EQ(a.cells.size(), 2u);
  ASSERT_EQ(b.cells.size(), 2u);
  ASSERT_EQ(c.cells.size(), 2u);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    // Cell fingerprints are pure functions of the coordinate.
    EXPECT_EQ(a.cells[i].fingerprint, b.cells[i].fingerprint);
    EXPECT_EQ(a.cells[i].fingerprint, c.cells[i].fingerprint);
    // Full results are byte-identical across runs AND thread counts (the
    // deterministic-parallelism contract, surfaced through the runner).
    EXPECT_EQ(a.cells[i].result_digest, b.cells[i].result_digest);
    EXPECT_EQ(a.cells[i].result_digest, c.cells[i].result_digest);
    EXPECT_EQ(a.cells[i].final_graph_digest, c.cells[i].final_graph_digest);
    EXPECT_DOUBLE_EQ(a.cells[i].quality.f1, c.cells[i].quality.f1);
    EXPECT_DOUBLE_EQ(a.cells[i].quality.auc, c.cells[i].quality.auc);
  }
  EXPECT_EQ(a.config_fp, c.config_fp);
}

// ---- Differential: a grid cell == a direct attack invocation ----

TEST(ScenarioRunner, DefenseNoneCellMatchesDirectInvocation) {
  // The none cell runs SECOND, after hiding has warmed the shared feature
  // cache — pinning that cross-cell cache reuse cannot leak stale features
  // (the cache signature must invalidate on the dataset change).
  const ScenarioConfig config = micro_config(
      R"([{"mechanism": "hiding", "rate": 0.3}, {"mechanism": "none"}])");
  const scenario::MatrixResult matrix = scenario::run_scenario(config);
  ASSERT_EQ(matrix.cells.size(), 2u);
  const scenario::CellResult& none_cell = matrix.cells[1];
  ASSERT_EQ(scenario::defense_label(none_cell.cell.defense), "none");

  // Direct invocation: same resolution helpers, fresh run-local cache.
  const eval::Experiment experiment = eval::make_experiment(
      scenario::resolve_world(none_cell.cell.world, config.seed), {}, 0.7,
      scenario::split_seed(config.seed));
  const core::FriendSeekerConfig seeker = scenario::resolve_seeker(
      none_cell.cell.world, none_cell.cell.attack, none_cell.cell.model,
      config.seed);
  eval::FriendSeekerAttack attack(seeker);
  const std::vector<int> predictions = attack.infer(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);

  EXPECT_EQ(none_cell.result_digest,
            eval::result_digest(attack.last_result()));
  EXPECT_EQ(none_cell.final_graph_digest,
            eval::graph_digest(attack.last_result().final_graph));
  const scenario::CellQuality direct = scenario::compute_quality(
      experiment.split.test_labels, predictions,
      attack.last_result().test_scores);
  EXPECT_DOUBLE_EQ(none_cell.quality.f1, direct.f1);
  EXPECT_DOUBLE_EQ(none_cell.quality.auc, direct.auc);
  EXPECT_DOUBLE_EQ(none_cell.quality.precision_at_k, direct.precision_at_k);
}

// ---- Artifact validation and diff ----

class ScenarioArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ScenarioConfig config = micro_config(
        R"([{"mechanism": "none"}, {"mechanism": "hiding", "rate": 0.3}])");
    matrix_ = new scenario::MatrixResult(scenario::run_scenario(config));
  }
  static void TearDownTestSuite() {
    delete matrix_;
    matrix_ = nullptr;
  }

  static scenario::MatrixResult* matrix_;
};

scenario::MatrixResult* ScenarioArtifactTest::matrix_ = nullptr;

TEST_F(ScenarioArtifactTest, EmittedArtifactValidates) {
  const json::Value doc = scenario::matrix_to_json(*matrix_);
  EXPECT_NO_THROW(scenario::validate_matrix(doc));
  EXPECT_EQ(doc.at("schema").as_string(), scenario::kMatrixSchema);
  EXPECT_EQ(doc.at("cells").as_array().size(), matrix_->cells.size());
}

TEST_F(ScenarioArtifactTest, ValidatorRejectsStructuralDamage) {
  json::Value doc = scenario::matrix_to_json(*matrix_);
  doc.as_object()["schema"] = "fs-other";
  EXPECT_THROW(scenario::validate_matrix(doc), ParseError);

  doc = scenario::matrix_to_json(*matrix_);
  doc.as_object()["cell_count"] = 99;
  EXPECT_THROW(scenario::validate_matrix(doc), ParseError);

  doc = scenario::matrix_to_json(*matrix_);
  doc.as_object()["cells"].as_array()[0].as_object()["quality"].as_object()
      ["f1"] = 1.7;
  EXPECT_THROW(scenario::validate_matrix(doc), ParseError);

  doc = scenario::matrix_to_json(*matrix_);
  doc.as_object()["cells"].as_array()[0].as_object()["scored_pairs"] =
      12345678;
  EXPECT_THROW(scenario::validate_matrix(doc), ParseError);

  doc = scenario::matrix_to_json(*matrix_);
  doc.as_object()["cells"].as_array().erase(
      doc.as_object()["cells"].as_array().begin());
  EXPECT_THROW(scenario::validate_matrix(doc), ParseError);
}

TEST_F(ScenarioArtifactTest, SelfDiffIsClean) {
  const json::Value doc = scenario::matrix_to_json(*matrix_);
  const scenario::DiffReport report = scenario::diff_matrices(doc, doc);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.notes.empty());
}

TEST_F(ScenarioArtifactTest, DiffFlagsOutOfBandQualityDrift) {
  const json::Value base = scenario::matrix_to_json(*matrix_);
  json::Value drifted = base;
  json::Object& cell =
      drifted.as_object()["cells"].as_array()[0].as_object();
  const double f1 = cell["quality"].as_object()["f1"].as_number();
  cell["quality"].as_object()["f1"] =
      f1 > 0.5 ? f1 - 0.2 : f1 + 0.2;  // beyond the 0.08 band, inside [0,1]

  const scenario::DiffReport report = scenario::diff_matrices(base, drifted);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("f1"), std::string::npos);

  // A widened band (CI's cross-toolchain mode) absorbs the same delta.
  scenario::DiffOptions wide;
  wide.tolerance_scale = 4.0;
  EXPECT_TRUE(scenario::diff_matrices(base, drifted, wide).ok());
}

TEST_F(ScenarioArtifactTest, DiffFlagsDigestAndPairingDamage) {
  const json::Value base = scenario::matrix_to_json(*matrix_);

  json::Value mutated = base;
  mutated.as_object()["cells"].as_array()[0].as_object()
      ["final_graph_digest"] = "deadbeefdeadbeef";
  EXPECT_FALSE(scenario::diff_matrices(base, mutated).ok());
  // Same mutation with lenient digests: a note, not a failure.
  scenario::DiffOptions lenient;
  lenient.lenient_digests = true;
  const scenario::DiffReport soft =
      scenario::diff_matrices(base, mutated, lenient);
  EXPECT_TRUE(soft.ok());
  EXPECT_FALSE(soft.notes.empty());
  // A foreign toolchain also downgrades digests to notes.
  mutated.as_object()["toolchain"] = "other-compiler";
  EXPECT_TRUE(scenario::diff_matrices(base, mutated).ok());

  json::Value missing = base;
  missing.as_object()["cells"].as_array().pop_back();
  missing.as_object()["cell_count"] =
      missing.at("cells").as_array().size();
  const scenario::DiffReport report = scenario::diff_matrices(base, missing);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("missing"), std::string::npos);
}

}  // namespace
}  // namespace fs
