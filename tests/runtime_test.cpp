// Unit tests for the execution-governance layer: cancellation tokens,
// deadlines, memory budgets, declarative retries, degradation reporting,
// and the governance hooks threaded through the loader, JOC builder,
// trainers, and pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>

#include "core/joc.h"
#include "core/pipeline.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "geo/quadtree.h"
#include "ml/svm.h"
#include "nn/supervised_autoencoder.h"
#include "util/failpoint.h"
#include "util/runtime.h"

namespace fs {
namespace {

namespace fp = util::failpoint;

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear(); }
  void TearDown() override { fp::clear(); }
};

// ---------- cancellation ----------

TEST_F(RuntimeTest, TokenRequestIsVisibleThroughContext) {
  runtime::CancellationToken token;
  runtime::ExecutionContext ctx;
  ctx.set_cancellation(&token);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_NO_THROW(ctx.checkpoint("test"));
  token.request();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_THROW(ctx.checkpoint("test"), CancelledError);
  EXPECT_THROW(ctx.throw_if_cancelled("test"), CancelledError);
  token.reset();
  EXPECT_FALSE(ctx.cancelled());
}

TEST_F(RuntimeTest, DefaultContextIsUnlimited) {
  runtime::ExecutionContext ctx;
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.deadline_expired());
  EXPECT_EQ(ctx.memory_limit(), 0u);
  EXPECT_NO_THROW(ctx.checkpoint("test"));
  EXPECT_NO_THROW(ctx.charge(std::size_t(1) << 40, "huge"));
}

// ---------- deadlines ----------

TEST_F(RuntimeTest, DeadlineExpiryAndRemaining) {
  EXPECT_FALSE(runtime::Deadline::unlimited().expired());
  EXPECT_TRUE(std::isinf(runtime::Deadline::unlimited().remaining_seconds()));
  const runtime::Deadline past = runtime::Deadline::after_seconds(0.0);
  EXPECT_TRUE(past.expired());
  EXPECT_DOUBLE_EQ(past.remaining_seconds(), 0.0);
  const runtime::Deadline future = runtime::Deadline::after_seconds(3600.0);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 3500.0);
}

TEST_F(RuntimeTest, ExpiredDeadlineMakesCheckpointThrowBudgetError) {
  runtime::ExecutionContext ctx;
  ctx.set_deadline_seconds(0.0);
  EXPECT_TRUE(ctx.deadline_expired());
  EXPECT_THROW(ctx.checkpoint("test"), BudgetError);
}

TEST_F(RuntimeTest, PhaseScopeTightensAndRestoresDeadline) {
  runtime::ExecutionContext ctx;
  ctx.set_deadline_seconds(3600.0);
  {
    runtime::PhaseScope scope(&ctx, 0.0001);
    EXPECT_LT(ctx.remaining_seconds(), 1.0);
  }
  EXPECT_GT(ctx.remaining_seconds(), 3000.0);
  {
    // A phase budget looser than the outer deadline leaves it unchanged.
    runtime::PhaseScope scope(&ctx, 7200.0);
    EXPECT_LT(ctx.remaining_seconds(), 3601.0);
  }
  // Null context and non-positive budgets are no-ops.
  runtime::PhaseScope null_scope(nullptr, 1.0);
  runtime::PhaseScope zero_scope(&ctx, 0.0);
  EXPECT_GT(ctx.remaining_seconds(), 3000.0);
}

// ---------- memory budget ----------

TEST_F(RuntimeTest, ChargeReleaseAndPeakAccounting) {
  runtime::ExecutionContext ctx;
  ctx.set_memory_limit(1000);
  ctx.charge(600, "a");
  EXPECT_EQ(ctx.charged(), 600u);
  EXPECT_THROW(ctx.charge(500, "b"), BudgetError);
  EXPECT_EQ(ctx.charged(), 600u);  // failed charge leaves no residue
  ctx.charge(300, "c");
  EXPECT_EQ(ctx.peak_charged(), 900u);
  ctx.release(600);
  EXPECT_EQ(ctx.charged(), 300u);
  EXPECT_EQ(ctx.peak_charged(), 900u);  // peak is sticky
  ctx.release(10000);                   // over-release clamps at zero
  EXPECT_EQ(ctx.charged(), 0u);
}

TEST_F(RuntimeTest, MemoryChargeIsRaii) {
  runtime::ExecutionContext ctx;
  {
    runtime::MemoryCharge charge(&ctx, 128, "scoped");
    EXPECT_EQ(ctx.charged(), 128u);
    runtime::MemoryCharge moved(std::move(charge));
    EXPECT_EQ(ctx.charged(), 128u);  // moved, not doubled
  }
  EXPECT_EQ(ctx.charged(), 0u);
  EXPECT_EQ(ctx.peak_charged(), 128u);
  // Null context: free.
  runtime::MemoryCharge free_charge(nullptr, 1 << 30, "free");
  EXPECT_EQ(ctx.charged(), 0u);
}

// ---------- retries ----------

TEST_F(RuntimeTest, RetrierHonoursAttemptBudget) {
  runtime::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_ms = 0.0;  // no sleeping in tests
  runtime::Retrier retrier(policy);
  EXPECT_TRUE(retrier.retry());   // attempt 2 allowed
  EXPECT_TRUE(retrier.retry());   // attempt 3 allowed
  EXPECT_FALSE(retrier.retry());  // budget exhausted
  EXPECT_EQ(retrier.failures(), 3);
}

TEST_F(RuntimeTest, RetrierBackoffIsExponentialWithBoundedJitter) {
  runtime::RetryPolicy policy;
  policy.backoff_ms = 8.0;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  runtime::Retrier a(policy);
  runtime::Retrier b(policy);
  for (int failures = 1; failures <= 4; ++failures) {
    const double nominal = 8.0 * std::pow(2.0, failures - 1);
    const double delay = a.delay_ms_for(failures);
    EXPECT_GE(delay, nominal * 0.75);
    EXPECT_LE(delay, nominal * 1.25);
    // Same policy (and seed) -> the same jitter stream: deterministic.
    EXPECT_DOUBLE_EQ(delay, b.delay_ms_for(failures));
  }
}

// ---------- degradation reporting ----------

TEST_F(RuntimeTest, DegradationReportFormatsAndClassifies) {
  runtime::DegradationReport report;
  EXPECT_FALSE(report.degraded());
  EXPECT_FALSE(report.cancelled());
  report.add("phase2.refine", "deadline", "budget exhausted", 2, 6);
  report.add("phase2.refine", "cancelled", "SIGINT", 3, 6);
  EXPECT_TRUE(report.degraded());
  EXPECT_TRUE(report.cancelled());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("phase2.refine: deadline (2/6)"), std::string::npos);
  EXPECT_NE(text.find("budget exhausted"), std::string::npos);
  EXPECT_NE(text.find("cancelled (3/6)"), std::string::npos);
}

// ---------- compiled-in failpoint registry ----------

TEST_F(RuntimeTest, KnownFailpointsAreSortedAndDocumented) {
  const auto& known = fp::known_failpoints();
  ASSERT_GE(known.size(), 7u);
  for (std::size_t i = 1; i < known.size(); ++i)
    EXPECT_LT(std::strcmp(known[i - 1].name, known[i].name), 0)
        << "registry must stay sorted by name";
  bool has_abort = false;
  for (const auto& entry : known) {
    EXPECT_GT(std::strlen(entry.description), 0u) << entry.name;
    if (std::string(entry.name) == "pipeline.iteration.abort")
      has_abort = true;
  }
  EXPECT_TRUE(has_abort);
}

// ---------- governance hooks in the heavy loops ----------

struct TinyExperiment {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
};

TinyExperiment make_tiny_experiment() {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 90;
  world_cfg.poi_count = 240;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  const eval::LabeledPairs pairs = eval::sample_candidate_pairs(world.dataset);
  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 2;
  return {world.dataset, eval::split_pairs(pairs, 0.7, 5), cfg};
}

TEST_F(RuntimeTest, JocBuildAbortsOnCancellation) {
  const TinyExperiment exp = make_tiny_experiment();
  const geo::QuadtreeDivision division(exp.dataset.poi_coordinates(), 50);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(exp.dataset.window_begin(),
                                exp.dataset.window_end(),
                                7 * geo::kSecondsPerDay);
  const core::OccupancyIndex index(exp.dataset, view, slots);

  runtime::CancellationToken token;
  token.request();
  runtime::ExecutionContext ctx;
  ctx.set_cancellation(&token);
  core::JocOptions options;
  options.context = &ctx;
  EXPECT_THROW(core::build_joc_matrix(index, exp.split.train_pairs, options),
               CancelledError);

  token.reset();
  ctx.set_deadline_seconds(0.0);
  EXPECT_THROW(core::build_joc_matrix(index, exp.split.train_pairs, options),
               BudgetError);
}

TEST_F(RuntimeTest, LoaderRetriesTransientOpenFailure) {
  const TinyExperiment exp = make_tiny_experiment();
  const std::string dir = testing::TempDir() + "/fs_runtime_loader";
  std::filesystem::create_directories(dir);
  data::save_checkins_snap(exp.dataset, dir + "/checkins.txt",
                           dir + "/edges.txt");

  fp::activate("data.load.open", fp::Action::kError, /*limit=*/1);
  util::Diagnostics diagnostics;
  data::LoadOptions options;
  options.diagnostics = &diagnostics;
  EXPECT_NO_THROW(data::load_checkins_snap(dir + "/checkins.txt",
                                           dir + "/edges.txt", options));
  EXPECT_GE(diagnostics.entries().size(), 1u);  // the retried open
}

TEST_F(RuntimeTest, LoaderAbortsOnCancellation) {
  // The loader only checks governance every 4096 lines, so this test needs
  // a trace longer than one stride.
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 220;
  world_cfg.poi_count = 500;
  world_cfg.city_count = 3;
  world_cfg.weeks = 16;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  const std::string dir = testing::TempDir() + "/fs_runtime_loader_cancel";
  std::filesystem::create_directories(dir);
  data::save_checkins_snap(world.dataset, dir + "/checkins.txt",
                           dir + "/edges.txt");
  ASSERT_GT(world.dataset.checkin_count(), 4096u)
      << "world too small to reach the loader's governance stride";

  runtime::CancellationToken token;
  token.request();
  runtime::ExecutionContext ctx;
  ctx.set_cancellation(&token);
  data::LoadOptions options;
  options.context = &ctx;
  EXPECT_THROW(data::load_checkins_snap(dir + "/checkins.txt",
                                        dir + "/edges.txt", options),
               CancelledError);
}

TEST_F(RuntimeTest, AutoencoderTruncatesOnExpiredDeadline) {
  util::Rng rng(19);
  nn::Matrix x(32, 10);
  std::vector<int> y(32);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);

  runtime::ExecutionContext ctx;
  ctx.set_deadline_seconds(0.0);
  util::Diagnostics diagnostics;
  nn::AutoencoderConfig cfg;
  cfg.encoder_dims = {10, 6, 3};
  cfg.epochs = 4;
  cfg.seed = 11;
  cfg.context = &ctx;
  cfg.diagnostics = &diagnostics;
  nn::SupervisedAutoencoder ae(cfg);
  // Truncation, not failure: the (untrained-epochs) model is still usable.
  EXPECT_NO_THROW(ae.train(x, y));
  EXPECT_GE(diagnostics.entries().size(), 1u);
  for (double p : ae.predict_proba(x)) EXPECT_TRUE(std::isfinite(p));
}

TEST_F(RuntimeTest, SvmChargesKernelAgainstMemoryBudget) {
  util::Rng rng(23);
  nn::Matrix x(64, 4);
  std::vector<int> y(64);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);

  runtime::ExecutionContext ctx;
  ctx.set_memory_limit(64 * 64 * sizeof(double) / 2);  // half the kernel
  ml::SvmConfig cfg;
  cfg.context = &ctx;
  ml::SvmClassifier svm(cfg);
  EXPECT_THROW(svm.fit(x, y), BudgetError);
  EXPECT_EQ(ctx.charged(), 0u);  // the failed charge left no residue
}

TEST_F(RuntimeTest, PipelineDegradesGracefullyOnPhase2Deadline) {
  TinyExperiment exp = make_tiny_experiment();
  runtime::ExecutionContext ctx;
  exp.config.context = &ctx;
  exp.config.phase2_budget_sec = 1e-9;  // expires before iteration 1
  core::FriendSeeker seeker(exp.config);
  const auto result =
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_EQ(result.iterations_run, 0);  // phase-1 graph kept
  ASSERT_TRUE(result.degradation.degraded());
  EXPECT_EQ(result.degradation.phases.front().phase, "phase2.refine");
  EXPECT_EQ(result.degradation.phases.front().reason, "deadline");
  EXPECT_GT(result.peak_memory_estimate, 0u);
}

TEST_F(RuntimeTest, PipelineDegradesGracefullyOnPhase2MemoryBudget) {
  TinyExperiment exp = make_tiny_experiment();
  // Probe phase 1 alone to learn the JOC + embedding footprint, then allow
  // just that: phase 2's composite/kernel charge must push past the limit.
  runtime::ExecutionContext probe;
  core::FriendSeekerConfig probe_cfg = exp.config;
  probe_cfg.context = &probe;
  probe_cfg.iterate = false;
  core::FriendSeeker probe_seeker(probe_cfg);
  (void)probe_seeker.run(exp.dataset, exp.split.train_pairs,
                         exp.split.train_labels, exp.split.test_pairs);
  ASSERT_GT(probe.peak_charged(), 0u);

  runtime::ExecutionContext ctx;
  ctx.set_memory_limit(probe.peak_charged() + 1024);
  exp.config.context = &ctx;
  core::FriendSeeker seeker(exp.config);
  const auto result =
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  ASSERT_TRUE(result.degradation.degraded());
  EXPECT_EQ(result.degradation.phases.front().reason, "memory");
  EXPECT_TRUE(result.fell_back_to_phase1);
}

TEST_F(RuntimeTest, PipelineAbortsHardWhenCancelledBeforeJocBuild) {
  TinyExperiment exp = make_tiny_experiment();
  runtime::CancellationToken token;
  token.request();
  runtime::ExecutionContext ctx;
  ctx.set_cancellation(&token);
  exp.config.context = &ctx;
  core::FriendSeeker seeker(exp.config);
  // Cancellation predates the JOC build, whose partial output is unusable:
  // the run aborts with the typed error instead of degrading.
  EXPECT_THROW(
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs),
      CancelledError);
}

}  // namespace
}  // namespace fs
