#include <gtest/gtest.h>

#include "geo/latlng.h"
#include "geo/quadtree.h"
#include "geo/spatial_division.h"
#include "geo/time_slots.h"
#include "util/rng.h"

namespace fs::geo {
namespace {

// ---------- distances ----------

TEST(LatLng, HaversineOneDegreeLatitude) {
  // One degree of latitude is ~111.2 km everywhere.
  const double d = haversine_m({10.0, 20.0}, {11.0, 20.0});
  EXPECT_NEAR(d, 111195.0, 200.0);
}

TEST(LatLng, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_m({42.0, -71.0}, {42.0, -71.0}), 0.0);
}

TEST(LatLng, HaversineSymmetric) {
  const LatLng a{31.2, 121.5}, b{39.9, 116.4};  // Shanghai <-> Beijing
  EXPECT_DOUBLE_EQ(haversine_m(a, b), haversine_m(b, a));
  EXPECT_NEAR(haversine_m(a, b), 1068000.0, 5000.0);
}

TEST(LatLng, EquirectangularMatchesHaversineLocally) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const LatLng a{rng.uniform(-60, 60), rng.uniform(-170, 170)};
    const LatLng b{a.lat + rng.uniform(-0.2, 0.2),
                   a.lng + rng.uniform(-0.2, 0.2)};
    const double h = haversine_m(a, b);
    const double e = equirectangular_m(a, b);
    EXPECT_NEAR(e, h, std::max(1.0, h * 0.01));
  }
}

// ---------- bounding box ----------

TEST(BoundingBox, ContainsIsHalfOpen) {
  const BoundingBox box{{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({0.5, 0.999}));
  EXPECT_FALSE(box.contains({1.0, 0.5}));
  EXPECT_FALSE(box.contains({0.5, 1.0}));
  EXPECT_FALSE(box.contains({-0.1, 0.5}));
}

TEST(BoundingBox, AroundCoversAllPoints) {
  util::Rng rng(11);
  std::vector<LatLng> pts;
  for (int i = 0; i < 100; ++i)
    pts.push_back({rng.uniform(-5, 5), rng.uniform(30, 40)});
  const BoundingBox box = BoundingBox::around(
      pts.begin(), pts.end(), [](const LatLng& p) { return p; });
  for (const LatLng& p : pts) EXPECT_TRUE(box.contains(p));
}

TEST(BoundingBox, AroundRejectsEmptyRange) {
  std::vector<LatLng> empty;
  EXPECT_THROW(BoundingBox::around(empty.begin(), empty.end(),
                                   [](const LatLng& p) { return p; }),
               std::invalid_argument);
}

TEST(BoundingBox, CenterIsMidpoint) {
  const BoundingBox box{{0.0, 2.0}, {4.0, 6.0}};
  EXPECT_DOUBLE_EQ(box.center().lat, 2.0);
  EXPECT_DOUBLE_EQ(box.center().lng, 4.0);
}

// ---------- quadtree ----------

std::vector<LatLng> clustered_pois(std::size_t n, util::Rng& rng) {
  std::vector<LatLng> pois;
  const LatLng centers[3] = {{1.0, 1.0}, {5.0, 5.0}, {2.0, 7.0}};
  for (std::size_t i = 0; i < n; ++i) {
    const LatLng& c = centers[i % 3];
    pois.push_back({rng.normal(c.lat, 0.1), rng.normal(c.lng, 0.1)});
  }
  return pois;
}

TEST(Quadtree, RespectsSigma) {
  util::Rng rng(13);
  const auto pois = clustered_pois(500, rng);
  const QuadtreeDivision division(pois, 50);
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell)
    EXPECT_LE(division.cell_pois(cell).size(), 50u);
}

TEST(Quadtree, SingleLeafWhenSigmaLarge) {
  util::Rng rng(17);
  const auto pois = clustered_pois(100, rng);
  const QuadtreeDivision division(pois, 1000);
  EXPECT_EQ(division.cell_count(), 1u);
  EXPECT_EQ(division.depth(), 0);
}

TEST(Quadtree, EveryPoiAssignedToExactlyOneLeaf) {
  util::Rng rng(19);
  const auto pois = clustered_pois(300, rng);
  const QuadtreeDivision division(pois, 40);
  std::size_t total = 0;
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell)
    total += division.cell_pois(cell).size();
  EXPECT_EQ(total, pois.size());
}

TEST(Quadtree, CellOfPoiMatchesCellOfCoordinate) {
  util::Rng rng(23);
  const auto pois = clustered_pois(300, rng);
  const QuadtreeDivision division(pois, 30);
  for (std::size_t i = 0; i < pois.size(); ++i)
    EXPECT_EQ(division.cell_of(pois[i]), division.cell_of_poi(i));
}

TEST(Quadtree, CellBoxContainsItsPois) {
  util::Rng rng(29);
  const auto pois = clustered_pois(200, rng);
  const QuadtreeDivision division(pois, 25);
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell)
    for (std::uint32_t poi : division.cell_pois(cell))
      EXPECT_TRUE(division.cell_box(cell).contains(pois[poi]));
}

TEST(Quadtree, OutOfBoundsPointsClampToBoundary) {
  util::Rng rng(31);
  const auto pois = clustered_pois(100, rng);
  const QuadtreeDivision division(pois, 20);
  // Far-away points must still resolve to a valid cell.
  EXPECT_LT(division.cell_of({89.0, 179.0}), division.cell_count());
  EXPECT_LT(division.cell_of({-89.0, -179.0}), division.cell_count());
}

TEST(Quadtree, DenseAreasGetMoreCells) {
  util::Rng rng(37);
  std::vector<LatLng> pois;
  // 90% of POIs in a tight cluster, 10% spread out.
  for (int i = 0; i < 900; ++i)
    pois.push_back({rng.normal(1.0, 0.05), rng.normal(1.0, 0.05)});
  for (int i = 0; i < 100; ++i)
    pois.push_back({rng.uniform(0.0, 8.0), rng.uniform(0.0, 8.0)});
  const QuadtreeDivision division(pois, 100);
  // Count cells whose center lies within the dense cluster vs outside.
  std::size_t dense_cells = 0;
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell) {
    const LatLng c = division.cell_box(cell).center();
    if (std::abs(c.lat - 1.0) < 0.5 && std::abs(c.lng - 1.0) < 0.5)
      ++dense_cells;
  }
  EXPECT_GT(dense_cells, division.cell_count() / 4);
}

TEST(Quadtree, NeighborCellsAreDistinctAndValid) {
  util::Rng rng(41);
  const auto pois = clustered_pois(400, rng);
  const QuadtreeDivision division(pois, 40);
  for (std::size_t cell = 0; cell < division.cell_count(); ++cell) {
    const auto neighbors = division.neighbor_cells(cell);
    for (std::size_t n : neighbors) {
      EXPECT_NE(n, cell);
      EXPECT_LT(n, division.cell_count());
    }
  }
}

TEST(Quadtree, MaxDepthGuardsDegeneratePois) {
  // All POIs at the same coordinate can never split below sigma.
  std::vector<LatLng> pois(100, LatLng{1.0, 1.0});
  const QuadtreeDivision division(pois, 10, /*max_depth=*/5);
  EXPECT_LE(division.depth(), 5);
  EXPECT_GE(division.cell_count(), 1u);
}

TEST(Quadtree, RejectsBadArguments) {
  std::vector<LatLng> empty;
  EXPECT_THROW(QuadtreeDivision(empty, 10), std::invalid_argument);
  std::vector<LatLng> one{{0, 0}};
  EXPECT_THROW(QuadtreeDivision(one, 0), std::invalid_argument);
}

// ---------- uniform grid ----------

TEST(UniformGrid, CellCountAndBounds) {
  util::Rng rng(43);
  const auto pois = clustered_pois(100, rng);
  const UniformGridDivision grid(pois, 4, 5);
  EXPECT_EQ(grid.cell_count(), 20u);
  for (const LatLng& p : pois) EXPECT_LT(grid.cell_of(p), 20u);
}

TEST(UniformGrid, CornersMapToCornerCells) {
  std::vector<LatLng> pois{{0.0, 0.0}, {1.0, 1.0}};
  const UniformGridDivision grid(pois, 2, 2);
  EXPECT_EQ(grid.cell_of({0.0, 0.0}), 0u);
  EXPECT_EQ(grid.cell_of({0.999, 0.999}), 3u);
}

// ---------- SpatialDivision views ----------

TEST(SpatialDivisionView, AdaptersForwardCalls) {
  util::Rng rng(47);
  const auto pois = clustered_pois(120, rng);
  const QuadtreeDivision qt(pois, 30);
  const UniformGridDivision ug(pois, 3, 3);
  const QuadtreeDivisionView qt_view(qt);
  const UniformGridDivisionView ug_view(ug);
  EXPECT_EQ(qt_view.cell_count(), qt.cell_count());
  EXPECT_EQ(ug_view.cell_count(), ug.cell_count());
  EXPECT_EQ(qt_view.cell_of(pois[0]), qt.cell_of(pois[0]));
  EXPECT_EQ(ug_view.cell_of(pois[0]), ug.cell_of(pois[0]));
}

// ---------- time slots ----------

TEST(TimeSlotting, SlotCountRoundsUp) {
  const TimeSlotting slots(0, 100, 30);
  EXPECT_EQ(slots.slot_count(), 4u);
}

TEST(TimeSlotting, SlotOfBasics) {
  const TimeSlotting slots(0, 7 * kSecondsPerDay, kSecondsPerDay);
  EXPECT_EQ(slots.slot_count(), 7u);
  EXPECT_EQ(slots.slot_of(0), 0u);
  EXPECT_EQ(slots.slot_of(kSecondsPerDay - 1), 0u);
  EXPECT_EQ(slots.slot_of(kSecondsPerDay), 1u);
  EXPECT_EQ(slots.slot_of(6 * kSecondsPerDay + 5), 6u);
}

TEST(TimeSlotting, OutOfWindowClamps) {
  const TimeSlotting slots(100, 200, 10);
  EXPECT_EQ(slots.slot_of(50), 0u);
  EXPECT_EQ(slots.slot_of(999), slots.slot_count() - 1);
}

TEST(TimeSlotting, RejectsBadWindows) {
  EXPECT_THROW(TimeSlotting(10, 10, 5), std::invalid_argument);
  EXPECT_THROW(TimeSlotting(0, 10, 0), std::invalid_argument);
}

struct TauCase {
  geo::Timestamp window_days;
  geo::Timestamp tau_days;
};

class TimeSlottingSweep : public ::testing::TestWithParam<TauCase> {};

TEST_P(TimeSlottingSweep, EveryTimestampLandsInAValidSlot) {
  const auto [window_days, tau_days] = GetParam();
  const TimeSlotting slots(0, window_days * kSecondsPerDay,
                           tau_days * kSecondsPerDay);
  util::Rng rng(53);
  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<Timestamp>(
        rng.index(static_cast<std::size_t>(window_days * kSecondsPerDay)));
    EXPECT_LT(slots.slot_of(t), slots.slot_count());
  }
  // Slots partition the window: slot i starts exactly where i-1 ends.
  for (std::size_t s = 0; s + 1 < slots.slot_count(); ++s) {
    const auto boundary =
        static_cast<Timestamp>((s + 1)) * tau_days * kSecondsPerDay;
    EXPECT_EQ(slots.slot_of(boundary - 1), s);
    EXPECT_EQ(slots.slot_of(boundary), s + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(TauSweep, TimeSlottingSweep,
                         ::testing::Values(TauCase{84, 1}, TauCase{84, 7},
                                           TauCase{84, 14}, TauCase{84, 28},
                                           TauCase{85, 7}, TauCase{90, 60}));

}  // namespace
}  // namespace fs::geo
