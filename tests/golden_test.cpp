// Golden regression: the tiny preset's end-to-end result is pinned in
// tests/golden/tiny.json (digests + quality). Any drift — an accidental
// behavior change, a non-determinism regression, a quality cliff — fails
// with a field-by-field diff.
//
// Bit-exact digests are only comparable on the toolchain that produced the
// golden file (FP contraction and libm differences legitimately change
// low-order bits), so the digest comparison is gated on a toolchain
// fingerprint; quality metrics are compared everywhere, with a loose
// tolerance on foreign toolchains.
//
// To re-pin after an intentional change: tools/update_golden.sh
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "kern/kern.h"
#include "obs/json.h"

#ifndef FS_GOLDEN_DIR
#error "FS_GOLDEN_DIR must point at the committed golden files"
#endif

namespace fs {
namespace {

namespace json = obs::json;

std::string golden_path() { return std::string(FS_GOLDEN_DIR) + "/tiny.json"; }

/// Compiler + C library + kernel-path fingerprint: digests are only
/// bit-comparable between builds that agree on it. The active fs::kern
/// ISA path is part of the fingerprint because each path has its own
/// (fixed, thread-count-invariant) accumulation order — an FS_KERNEL
/// override or a host without AVX-512 legitimately produces different
/// low-order bits than the pinned run.
std::string toolchain_fingerprint() {
  std::ostringstream oss;
  oss << __VERSION__;
#ifdef __GLIBC__
  oss << " glibc-" << __GLIBC__ << "." << __GLIBC_MINOR__;
#endif
  oss << " kern-" << kern::path_name(kern::active_path());
  return oss.str();
}

struct GoldenRun {
  std::string result_digest;
  std::string final_graph_digest;
  ml::Prf quality;
};

GoldenRun run_tiny_preset() {
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);
  eval::FriendSeekerAttack attack(preset.seeker);
  GoldenRun run;
  run.quality = eval::run_attack(attack, experiment);
  run.result_digest = eval::result_digest(attack.last_result());
  run.final_graph_digest =
      eval::graph_digest(attack.last_result().final_graph);
  return run;
}

TEST(Golden, TinyPresetMatchesPinnedResult) {
  const GoldenRun run = run_tiny_preset();

  if (std::getenv("FS_UPDATE_GOLDEN") != nullptr) {
    json::Object root;
    root["preset"] = "tiny";
    root["toolchain"] = toolchain_fingerprint();
    root["result_digest"] = run.result_digest;
    root["final_graph_digest"] = run.final_graph_digest;
    json::Object quality;
    quality["precision"] = run.quality.precision;
    quality["recall"] = run.quality.recall;
    quality["f1"] = run.quality.f1;
    root["quality"] = quality;
    json::write_file(golden_path(), json::Value(root));
    GTEST_LOG_(INFO) << "updated " << golden_path();
    return;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run tools/update_golden.sh";
  std::ostringstream text;
  text << in.rdbuf();
  const json::Value golden = json::parse(text.str());

  const std::string drift_hint =
      "\n  If this change is intentional, re-pin with tools/update_golden.sh"
      "\n  and commit the tests/golden/ diff alongside the change.";

  const bool same_toolchain =
      golden.at("toolchain").as_string() == toolchain_fingerprint();
  if (same_toolchain) {
    EXPECT_EQ(golden.at("result_digest").as_string(), run.result_digest)
        << "tiny-preset result digest drifted (predictions, scores, or "
           "final graph changed)."
        << drift_hint;
    EXPECT_EQ(golden.at("final_graph_digest").as_string(),
              run.final_graph_digest)
        << "tiny-preset final-graph digest drifted." << drift_hint;
  } else {
    GTEST_LOG_(INFO) << "toolchain differs from golden ("
                     << golden.at("toolchain").as_string() << " vs "
                     << toolchain_fingerprint()
                     << "); skipping bit-exact digest comparison";
  }

  // Quality is comparable everywhere; allow FP slack only across
  // toolchains.
  const double tolerance = same_toolchain ? 1e-12 : 0.05;
  const json::Value& quality = golden.at("quality");
  EXPECT_NEAR(quality.at("precision").as_number(), run.quality.precision,
              tolerance)
      << "precision drifted from the pinned tiny-preset value." << drift_hint;
  EXPECT_NEAR(quality.at("recall").as_number(), run.quality.recall,
              tolerance)
      << "recall drifted from the pinned tiny-preset value." << drift_hint;
  EXPECT_NEAR(quality.at("f1").as_number(), run.quality.f1, tolerance)
      << "f1 drifted from the pinned tiny-preset value." << drift_hint;
}

}  // namespace
}  // namespace fs
