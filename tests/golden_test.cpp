// Golden regression: the tiny preset's end-to-end result is pinned in
// tests/golden/tiny.json (digests + quality). Any drift — an accidental
// behavior change, a non-determinism regression, a quality cliff — fails
// with a field-by-field diff.
//
// Bit-exact digests are only comparable on the toolchain that produced the
// golden file (FP contraction and libm differences legitimately change
// low-order bits), so the digest comparison is gated on a toolchain
// fingerprint; quality metrics are compared everywhere, with a loose
// tolerance on foreign toolchains.
//
// To re-pin after an intentional change: tools/update_golden.sh
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "obs/json.h"
#include "scenario/artifact.h"
#include "scenario/config.h"
#include "scenario/runner.h"

#ifndef FS_GOLDEN_DIR
#error "FS_GOLDEN_DIR must point at the committed golden files"
#endif

namespace fs {
namespace {

namespace json = obs::json;

std::string golden_path() { return std::string(FS_GOLDEN_DIR) + "/tiny.json"; }

/// The shared toolchain fingerprint (see eval/digest.h): digests are only
/// bit-comparable between builds that agree on it.
std::string toolchain_fingerprint() { return eval::toolchain_fingerprint(); }

struct GoldenRun {
  std::string result_digest;
  std::string final_graph_digest;
  ml::Prf quality;
};

GoldenRun run_tiny_preset() {
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);
  eval::FriendSeekerAttack attack(preset.seeker);
  GoldenRun run;
  run.quality = eval::run_attack(attack, experiment);
  run.result_digest = eval::result_digest(attack.last_result());
  run.final_graph_digest =
      eval::graph_digest(attack.last_result().final_graph);
  return run;
}

TEST(Golden, TinyPresetMatchesPinnedResult) {
  const GoldenRun run = run_tiny_preset();

  if (std::getenv("FS_UPDATE_GOLDEN") != nullptr) {
    json::Object root;
    root["preset"] = "tiny";
    root["toolchain"] = toolchain_fingerprint();
    root["result_digest"] = run.result_digest;
    root["final_graph_digest"] = run.final_graph_digest;
    json::Object quality;
    quality["precision"] = run.quality.precision;
    quality["recall"] = run.quality.recall;
    quality["f1"] = run.quality.f1;
    root["quality"] = quality;
    json::write_file(golden_path(), json::Value(root));
    GTEST_LOG_(INFO) << "updated " << golden_path();
    return;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — run tools/update_golden.sh";
  std::ostringstream text;
  text << in.rdbuf();
  const json::Value golden = json::parse(text.str());

  const std::string drift_hint =
      "\n  If this change is intentional, re-pin with tools/update_golden.sh"
      "\n  and commit the tests/golden/ diff alongside the change.";

  const bool same_toolchain =
      golden.at("toolchain").as_string() == toolchain_fingerprint();
  if (same_toolchain) {
    EXPECT_EQ(golden.at("result_digest").as_string(), run.result_digest)
        << "tiny-preset result digest drifted (predictions, scores, or "
           "final graph changed)."
        << drift_hint;
    EXPECT_EQ(golden.at("final_graph_digest").as_string(),
              run.final_graph_digest)
        << "tiny-preset final-graph digest drifted." << drift_hint;
  } else {
    GTEST_LOG_(INFO) << "toolchain differs from golden ("
                     << golden.at("toolchain").as_string() << " vs "
                     << toolchain_fingerprint()
                     << "); skipping bit-exact digest comparison";
  }

  // Quality is comparable everywhere; allow FP slack only across
  // toolchains.
  const double tolerance = same_toolchain ? 1e-12 : 0.05;
  const json::Value& quality = golden.at("quality");
  EXPECT_NEAR(quality.at("precision").as_number(), run.quality.precision,
              tolerance)
      << "precision drifted from the pinned tiny-preset value." << drift_hint;
  EXPECT_NEAR(quality.at("recall").as_number(), run.quality.recall,
              tolerance)
      << "recall drifted from the pinned tiny-preset value." << drift_hint;
  EXPECT_NEAR(quality.at("f1").as_number(), run.quality.f1, tolerance)
      << "f1 drifted from the pinned tiny-preset value." << drift_hint;
}

// The scenario matrix slice: a 6-cell grid (tiny world x {no defense,
// hiding 0.3, cross-grid blur 0.3} x blocking {on, off}) pinned in
// tests/golden/scenario_tiny.json. Compared with the same tolerance-banded
// diff scenario_diff uses in CI: quality bands everywhere, bit-exact graph
// digests only on the pinning toolchain. Re-pin: tools/update_golden.sh
// (or FS_UPDATE_GOLDEN=1 ./golden_test).
TEST(Golden, ScenarioSliceMatchesPinnedMatrix) {
  const std::string config_path =
      std::string(FS_GOLDEN_DIR) + "/scenario_slice.json";
  std::ifstream config_in(config_path);
  ASSERT_TRUE(config_in.good()) << "missing slice config " << config_path;
  std::ostringstream config_text;
  config_text << config_in.rdbuf();
  const scenario::ScenarioConfig config =
      scenario::parse_scenario_config_text(config_text.str());

  const scenario::MatrixResult matrix = scenario::run_scenario(config);
  const std::string artifact_path =
      std::string(FS_GOLDEN_DIR) + "/scenario_tiny.json";

  if (std::getenv("FS_UPDATE_GOLDEN") != nullptr) {
    scenario::write_matrix(artifact_path, matrix);
    GTEST_LOG_(INFO) << "updated " << artifact_path;
    return;
  }

  std::ifstream artifact_in(artifact_path);
  ASSERT_TRUE(artifact_in.good())
      << "missing golden matrix " << artifact_path
      << " — run tools/update_golden.sh";
  const json::Value golden = scenario::load_matrix_file(artifact_path);

  const json::Value current = scenario::matrix_to_json(matrix);
  ASSERT_NO_THROW(scenario::validate_matrix(current));

  // On a foreign toolchain diff_matrices already downgrades digest
  // mismatches to notes; the quality bands gate everywhere.
  const scenario::DiffReport report =
      scenario::diff_matrices(golden, current);
  for (const std::string& failure : report.failures)
    ADD_FAILURE() << failure
                  << "\n  If this change is intentional, re-pin with "
                     "tools/update_golden.sh and commit the tests/golden/ "
                     "diff alongside the change.";
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace fs
