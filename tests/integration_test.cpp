// End-to-end integration tests: the full attack pipeline against the full
// evaluation protocol, including obfuscation countermeasures — small-scale
// versions of the paper's headline claims.
#include <gtest/gtest.h>

#include "baselines/colocation.h"
#include "baselines/walk2friends.h"
#include "data/obfuscation.h"
#include "eval/harness.h"
#include "geo/quadtree.h"

namespace fs {
namespace {

data::SyntheticWorldConfig integration_world() {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 170;
  cfg.poi_count = 450;
  cfg.city_count = 4;
  cfg.weeks = 8;
  cfg.seed = 77;
  return cfg;
}

core::FriendSeekerConfig integration_seeker() {
  core::FriendSeekerConfig cfg = eval::default_seeker_config();
  cfg.sigma = 80;
  cfg.presence.feature_dim = 24;
  cfg.presence.epochs = 8;
  cfg.presence.max_autoencoder_rows = 300;
  cfg.max_iterations = 3;
  return cfg;
}

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    experiment_ = new eval::Experiment(
        eval::make_experiment(integration_world()));
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }

  static eval::Experiment* experiment_;
};

eval::Experiment* IntegrationFixture::experiment_ = nullptr;

TEST_F(IntegrationFixture, FriendSeekerRecoversMajorityOfFriendships) {
  eval::FriendSeekerAttack attack(integration_seeker());
  const ml::Prf prf = eval::run_attack(attack, *experiment_);
  EXPECT_GT(prf.f1, 0.6);
  EXPECT_GT(prf.precision, 0.5);
  EXPECT_GT(prf.recall, 0.5);
}

TEST_F(IntegrationFixture, IterationImprovesOverPhaseOne) {
  eval::FriendSeekerAttack attack(integration_seeker());
  eval::run_attack(attack, *experiment_);
  const auto& iterations = attack.last_result().iterations;
  ASSERT_GE(iterations.size(), 2u);
  const ml::Prf phase1 = ml::prf(experiment_->split.test_labels,
                                 iterations.front().test_predictions);
  const ml::Prf final = ml::prf(experiment_->split.test_labels,
                                iterations.back().test_predictions);
  // The paper's Fig 10: refinement iteration always improves F1.
  EXPECT_GT(final.f1, phase1.f1 - 0.02);
}

TEST_F(IntegrationFixture, FindsFriendsWithoutCoLocations) {
  // Paper claim: FriendSeeker identifies a substantial share of friends
  // sharing no common locations — the knowledge-based methods cannot, by
  // construction.
  eval::FriendSeekerAttack seeker(integration_seeker());
  const auto seeker_pred = seeker.infer(
      experiment_->dataset, experiment_->split.train_pairs,
      experiment_->split.train_labels, experiment_->split.test_pairs);

  baselines::CoLocationAttack colocation;
  const auto coloc_pred = colocation.infer(
      experiment_->dataset, experiment_->split.train_pairs,
      experiment_->split.train_labels, experiment_->split.test_pairs);

  std::size_t hidden_friends = 0, seeker_found = 0, coloc_found = 0;
  for (std::size_t i = 0; i < experiment_->split.test_pairs.size(); ++i) {
    if (!experiment_->split.test_labels[i]) continue;
    const auto [a, b] = experiment_->split.test_pairs[i];
    if (experiment_->dataset.common_poi_count(a, b) > 0) continue;
    ++hidden_friends;
    seeker_found += seeker_pred[i];
    coloc_found += coloc_pred[i];
  }
  ASSERT_GT(hidden_friends, 0u);
  EXPECT_EQ(coloc_found, 0u);  // structurally impossible for co-location
  EXPECT_GT(static_cast<double>(seeker_found) /
                static_cast<double>(hidden_friends),
            0.25);
}

TEST_F(IntegrationFixture, HidingObfuscationDegradesGracefully) {
  // 30 % hiding should reduce but not destroy FriendSeeker's accuracy
  // (paper: F1 stays around 0.4 even at 50 % obfuscation).
  util::Rng rng(5);
  const data::Dataset hidden =
      data::hide_checkins(experiment_->dataset, 0.3, rng);
  eval::Experiment obfuscated;
  obfuscated.dataset = hidden;
  obfuscated.split = experiment_->split;
  obfuscated.name = "hidden-30";

  eval::FriendSeekerAttack attack(integration_seeker());
  const ml::Prf prf = eval::run_attack(attack, obfuscated);
  EXPECT_GT(prf.f1, 0.45);
}

TEST_F(IntegrationFixture, CrossGridBlurringHurtsMoreThanInGrid) {
  // The paper finds cross-grid blurring the strongest countermeasure; at
  // small scale we assert the weaker, more robust property: both keep the
  // attack above floor, and neither beats the clean dataset.
  eval::FriendSeekerAttack clean_attack(integration_seeker());
  const ml::Prf clean = eval::run_attack(clean_attack, *experiment_);

  const geo::QuadtreeDivision division(
      experiment_->dataset.poi_coordinates(), 80);
  util::Rng rng(9);
  const data::Dataset blurred =
      data::blur_cross_grid(experiment_->dataset, 0.4, division, rng);
  eval::Experiment obfuscated;
  obfuscated.dataset = blurred;
  obfuscated.split = experiment_->split;
  obfuscated.name = "crossblur-40";

  eval::FriendSeekerAttack attack(integration_seeker());
  const ml::Prf perturbed = eval::run_attack(attack, obfuscated);
  EXPECT_LT(perturbed.f1, clean.f1 + 0.02);
  EXPECT_GT(perturbed.f1, 0.35);
}

TEST_F(IntegrationFixture, SupervisedAblationBeatsPlainAutoencoder) {
  core::FriendSeekerConfig supervised = integration_seeker();
  supervised.iterate = false;  // isolate phase 1
  core::FriendSeekerConfig unsupervised = supervised;
  unsupervised.presence.alpha = 0.0;

  eval::FriendSeekerAttack with(supervised);
  eval::FriendSeekerAttack without(unsupervised);
  const ml::Prf f_with = eval::run_attack(with, *experiment_);
  const ml::Prf f_without = eval::run_attack(without, *experiment_);
  // The supervision term exists to make the code discriminative; allow a
  // small tolerance for seed noise but require no large regression.
  EXPECT_GT(f_with.f1, f_without.f1 - 0.05);
}

}  // namespace
}  // namespace fs
