// Fault-injection suite: drives the failpoint registry and verifies the
// pipeline degrades gracefully end to end — NaN training falls back to the
// phase-1 graph, torn checkpoints are rejected and restart cleanly, and
// permissive ingestion survives malformed traces with an accurate report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs {
namespace {

namespace fp = util::failpoint;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear(); }
  void TearDown() override { fp::clear(); }
};

// ---------- registry semantics ----------

TEST_F(FailpointTest, InactiveByDefault) {
  EXPECT_FALSE(fp::any_active());
  EXPECT_FALSE(fp::fail("no.such.point"));
  EXPECT_DOUBLE_EQ(fp::corrupt("no.such.point", 2.5), 2.5);
  EXPECT_EQ(fp::truncate("no.such.point", 100), 100u);
}

TEST_F(FailpointTest, ActivateDeactivate) {
  fp::activate("t.a.error", fp::Action::kError);
  EXPECT_TRUE(fp::any_active());
  EXPECT_TRUE(fp::fail("t.a.error"));
  EXPECT_EQ(fp::triggers("t.a.error"), 1u);
  fp::deactivate("t.a.error");
  EXPECT_FALSE(fp::fail("t.a.error"));
  EXPECT_FALSE(fp::any_active());
}

TEST_F(FailpointTest, SkipAndLimitBudget) {
  fp::Config config;
  config.action = fp::Action::kError;
  config.skip = 1;
  config.limit = 2;
  fp::activate("t.a.budget", config);
  EXPECT_FALSE(fp::fail("t.a.budget"));  // skipped
  EXPECT_TRUE(fp::fail("t.a.budget"));
  EXPECT_TRUE(fp::fail("t.a.budget"));
  EXPECT_FALSE(fp::fail("t.a.budget"));  // limit exhausted
  EXPECT_EQ(fp::evaluations("t.a.budget"), 4u);
  EXPECT_EQ(fp::triggers("t.a.budget"), 2u);
}

TEST_F(FailpointTest, ActionsMapToHelpers) {
  fp::activate("t.a.nan", fp::Action::kNan);
  EXPECT_TRUE(std::isnan(fp::corrupt("t.a.nan", 1.0)));
  // A nan-action point never makes fail()/truncate() fire.
  fp::activate("t.b.nan", fp::Action::kNan);
  EXPECT_FALSE(fp::fail("t.b.nan"));

  fp::activate("t.a.trunc", fp::Action::kTruncate);
  EXPECT_EQ(fp::truncate("t.a.trunc", 100), 50u);

  fp::activate("t.a.lat", fp::Action::kLatency);
  EXPECT_FALSE(fp::fail("t.a.lat"));  // delays, never fails
  EXPECT_EQ(fp::triggers("t.a.lat"), 1u);
}

TEST_F(FailpointTest, InitFromEnv) {
  ::setenv("FS_FAILPOINTS", "env.a=error:limit=2; env.b=nan", 1);
  fp::init_from_env();
  ::unsetenv("FS_FAILPOINTS");
  EXPECT_TRUE(fp::fail("env.a"));
  EXPECT_TRUE(fp::fail("env.a"));
  EXPECT_FALSE(fp::fail("env.a"));
  EXPECT_TRUE(std::isnan(fp::corrupt("env.b", 0.0)));
}

// ---------- hardened ingestion under injected I/O faults ----------

TEST_F(FailpointTest, LoaderOpenFailureThrowsIoError) {
  const std::string dir = testing::TempDir() + "/fs_fp_loader";
  std::filesystem::create_directories(dir);
  {
    std::ofstream checkins(dir + "/checkins.txt");
    checkins << "1\t1970-01-01T00:00:00Z\t1.0\t2.0\t7\n";
    checkins << "1\t1970-01-02T00:00:00Z\t1.0\t2.0\t7\n";
    std::ofstream edges(dir + "/edges.txt");
  }
  fp::activate("data.load.open", fp::Action::kError);
  EXPECT_THROW(
      data::load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt"),
      IoError);
  fp::clear();
  EXPECT_NO_THROW(
      data::load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt"));
}

// ---------- numeric guards in training ----------

nn::AutoencoderConfig tiny_autoencoder_config() {
  nn::AutoencoderConfig cfg;
  cfg.encoder_dims = {10, 6, 3};
  cfg.epochs = 4;
  cfg.seed = 11;
  return cfg;
}

void tiny_training_data(nn::Matrix& x, std::vector<int>& y) {
  util::Rng rng(19);
  x = nn::Matrix(32, 10);
  y.assign(32, 0);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
}

TEST_F(FailpointTest, AutoencoderRetriesTransientNan) {
  nn::Matrix x;
  std::vector<int> y;
  tiny_training_data(x, y);
  nn::AutoencoderConfig cfg = tiny_autoencoder_config();
  util::Diagnostics diagnostics;
  cfg.diagnostics = &diagnostics;
  // One poisoned batch: the first attempt diverges, the retry runs clean.
  fp::activate("nn.train.nan", fp::Action::kNan, /*limit=*/1);
  nn::SupervisedAutoencoder ae(cfg);
  EXPECT_NO_THROW(ae.train(x, y));
  EXPECT_GE(diagnostics.entries().size(), 1u);
  EXPECT_FALSE(diagnostics.has_errors());  // a survived retry is a warning
  for (double p : ae.predict_proba(x)) EXPECT_TRUE(std::isfinite(p));
}

TEST_F(FailpointTest, AutoencoderGivesUpAfterRepeatedDivergence) {
  nn::Matrix x;
  std::vector<int> y;
  tiny_training_data(x, y);
  nn::AutoencoderConfig cfg = tiny_autoencoder_config();
  util::Diagnostics diagnostics;
  cfg.diagnostics = &diagnostics;
  fp::activate("nn.train.nan", fp::Action::kNan);  // every attempt poisoned
  nn::SupervisedAutoencoder ae(cfg);
  EXPECT_THROW(ae.train(x, y), ConvergenceError);
  EXPECT_GE(diagnostics.entries().size(), 1u);
}

// ---------- end-to-end graceful degradation ----------

struct SmallExperiment {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
};

SmallExperiment make_small_experiment() {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 90;
  world_cfg.poi_count = 240;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  const eval::LabeledPairs pairs = eval::sample_candidate_pairs(world.dataset);
  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 2;
  return {world.dataset, eval::split_pairs(pairs, 0.7, 5), cfg};
}

TEST_F(FailpointTest, PipelineFallsBackToPhase1OnNanTraining) {
  SmallExperiment exp = make_small_experiment();
  // Every phase-2 SVM fit sees a non-finite feature and throws; phase 1
  // must still come back as a usable (if unrefined) result.
  fp::activate("ml.svm.nan", fp::Action::kNan);
  core::FriendSeeker seeker(exp.config);
  const auto result =
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.fell_back_to_phase1);
  EXPECT_EQ(result.iterations_run, 0);
  EXPECT_TRUE(result.diagnostics.has_errors());
}

TEST_F(FailpointTest, PipelineCheckpointsAndResumes) {
  SmallExperiment exp = make_small_experiment();
  const std::string dir = testing::TempDir() + "/fs_fp_resume";
  std::filesystem::remove_all(dir);

  exp.config.checkpoint_dir = dir;
  exp.config.max_iterations = 1;
  core::FriendSeeker first(exp.config);
  const auto before =
      first.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                exp.split.test_pairs);
  ASSERT_TRUE(std::filesystem::exists(dir + "/checkpoint.fsck"));

  // Resume picks up after iteration 1 and runs only iteration 2.
  exp.config.max_iterations = 2;
  exp.config.resume = true;
  core::FriendSeeker second(exp.config);
  const auto resumed =
      second.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  EXPECT_EQ(resumed.resumed_from_iteration, 1);
  EXPECT_EQ(resumed.iterations_run, 2);
  EXPECT_EQ(resumed.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_FALSE(resumed.fell_back_to_phase1);
  (void)before;
}

TEST_F(FailpointTest, PipelineSurvivesCheckpointSaveFailure) {
  SmallExperiment exp = make_small_experiment();
  const std::string dir = testing::TempDir() + "/fs_fp_savefail";
  std::filesystem::remove_all(dir);
  exp.config.checkpoint_dir = dir;
  exp.config.max_iterations = 1;
  fp::activate("checkpoint.save.io", fp::Action::kError);
  core::FriendSeeker seeker(exp.config);
  const auto result =
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  // The run finishes; the lost checkpoint is only a diagnostic.
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_FALSE(std::filesystem::exists(dir + "/checkpoint.fsck"));
  EXPECT_GE(result.diagnostics.entries().size(), 1u);
}

TEST_F(FailpointTest, FailedRenameLeavesNoStrayTempFile) {
  SmallExperiment exp = make_small_experiment();
  const std::string dir = testing::TempDir() + "/fs_fp_renamefail";
  std::filesystem::remove_all(dir);
  exp.config.checkpoint_dir = dir;
  exp.config.max_iterations = 1;
  fp::activate("checkpoint.save.rename", fp::Action::kError);
  core::FriendSeeker seeker(exp.config);
  const auto result =
      seeker.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  // The save failed after the temp file was fully written: the writer must
  // remove it again, never leaving a half-promoted checkpoint behind.
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_FALSE(std::filesystem::exists(dir + "/checkpoint.fsck"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/checkpoint.fsck.tmp"));
  EXPECT_GE(result.diagnostics.entries().size(), 1u);
}

TEST_F(FailpointTest, ResumeRejectsTruncatedCheckpointAndRestarts) {
  SmallExperiment exp = make_small_experiment();
  const std::string dir = testing::TempDir() + "/fs_fp_truncated";
  std::filesystem::remove_all(dir);
  exp.config.checkpoint_dir = dir;
  exp.config.max_iterations = 1;
  core::FriendSeeker first(exp.config);
  (void)first.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                  exp.split.test_pairs);
  ASSERT_TRUE(std::filesystem::exists(dir + "/checkpoint.fsck"));

  // A torn read drops the file's tail: the load must fail loudly...
  fp::activate("checkpoint.load.truncate", fp::Action::kTruncate);
  EXPECT_THROW(core::load_pipeline_checkpoint(dir + "/checkpoint.fsck"),
               CorruptCheckpoint);

  // ...and a resume against it must restart cleanly instead of crashing
  // or silently mixing in garbage.
  fp::clear();
  fp::activate("checkpoint.load.truncate", fp::Action::kTruncate);
  exp.config.resume = true;
  core::FriendSeeker second(exp.config);
  const auto result =
      second.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                 exp.split.test_pairs);
  EXPECT_EQ(result.resumed_from_iteration, 0);
  EXPECT_EQ(result.test_predictions.size(), exp.split.test_pairs.size());
  EXPECT_GE(result.diagnostics.entries().size(), 1u);
}

TEST_F(FailpointTest, ResumeRejectsBitRot) {
  SmallExperiment exp = make_small_experiment();
  const std::string dir = testing::TempDir() + "/fs_fp_bitrot";
  std::filesystem::remove_all(dir);
  exp.config.checkpoint_dir = dir;
  exp.config.max_iterations = 1;
  core::FriendSeeker first(exp.config);
  (void)first.run(exp.dataset, exp.split.train_pairs, exp.split.train_labels,
                  exp.split.test_pairs);
  const std::string path = dir + "/checkpoint.fsck";
  ASSERT_TRUE(std::filesystem::exists(path));

  // Flip one bit in the middle of the payload.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream raw;
    raw << in.rdbuf();
    bytes = raw.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(core::load_pipeline_checkpoint(path), CorruptCheckpoint);
}

// ---------- permissive ingestion of a dirty trace, end to end ----------

TEST_F(FailpointTest, PermissiveLoadSurvivesTenPercentGarbage) {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 60;
  world_cfg.poi_count = 150;
  world_cfg.city_count = 2;
  world_cfg.weeks = 3;
  world_cfg.seed = 23;
  const auto world = data::generate_world(world_cfg);
  const std::string dir = testing::TempDir() + "/fs_fp_dirty";
  std::filesystem::create_directories(dir);
  data::save_checkins_snap(world.dataset, dir + "/checkins.txt",
                           dir + "/edges.txt");

  // Corrupt ~10 % of the trace: append one garbage line per nine clean
  // ones, cycling through every malformation category.
  const std::size_t clean = world.dataset.checkin_count();
  const std::size_t garbage = clean / 9;
  {
    std::ofstream checkins(dir + "/checkins.txt", std::ios::app);
    for (std::size_t i = 0; i < garbage; ++i) {
      switch (i % 4) {
        case 0: checkins << "999\n"; break;
        case 1: checkins << "999\t2010-02-31T00:00:00Z\t1.0\t2.0\t7\n"; break;
        case 2: checkins << "999\t2010-01-01T00:00:00Z\txx\t2.0\t7\n"; break;
        case 3: checkins << "999\t2010-01-01T00:00:00Z\t99.0\t2.0\t7\n"; break;
      }
    }
  }

  // Strict mode refuses the dirty trace outright.
  EXPECT_THROW(
      data::load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt"),
      ParseError);

  data::LoadOptions options;
  options.strictness = data::Strictness::kPermissive;
  data::LoadReport report;
  const data::Dataset loaded = data::load_checkins_snap(
      dir + "/checkins.txt", dir + "/edges.txt", options, &report);

  // Every clean record survived, every garbage line was quarantined and
  // attributed to the right category.
  EXPECT_EQ(loaded.user_count(), world.dataset.user_count());
  EXPECT_EQ(loaded.checkin_count(), clean);
  EXPECT_EQ(report.checkin_lines, clean + garbage);
  EXPECT_EQ(report.accepted_checkins, clean);
  EXPECT_EQ(report.quarantined_checkins(), garbage);
  EXPECT_EQ(report.short_lines + report.bad_timestamps + report.bad_numbers +
                report.out_of_range_coords,
            garbage);
  EXPECT_FALSE(report.sample_bad_lines.empty());
}

}  // namespace
}  // namespace fs
