#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/error.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace fs::util {
namespace {

// ---------- Rng ----------

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextU64RejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.next_u64(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<long long> seen;
  for (int i = 0; i < 500; ++i) {
    const long long v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.range(2, 1), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialPositiveAndMean) {
  Rng rng(23);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.5);
    ASSERT_GT(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / n, 2.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PowerLawBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.power_law_int(1.6, 100);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
  }
}

TEST(Rng, PowerLawIsHeavyTailed) {
  Rng rng(31);
  int ones = 0, large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const int v = rng.power_law_int(1.8, 200);
    ones += (v == 1);
    large += (v > 50);
  }
  EXPECT_GT(ones, n / 3);   // mass concentrates at the bottom
  EXPECT_GT(large, 10);     // but the tail is populated
}

TEST(Rng, PoissonMean) {
  Rng rng(37);
  double total = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) total += rng.poisson(3.0);
  EXPECT_NEAR(total / n, 3.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(43);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.sample_indices(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
  }
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(47);
  const std::vector<double> weights{0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.weighted_index(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(53);
  const std::vector<double> weights{1.0, 3.0};
  int hits = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) hits += (rng.weighted_index(weights) == 1);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.75, 0.02);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(59);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// ---------- strings ----------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsRuns) {
  const auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 "), -1000.0);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_double(""), std::invalid_argument);
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW(parse_int("4.2"), std::invalid_argument);
  EXPECT_THROW(parse_int("x"), std::invalid_argument);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

// ---------- Table ----------

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, BuildsRowsAndText) {
  Table t({"name", "value"});
  t.new_row().add("alpha").add(1.5, 1);
  t.new_row().add("b").add(42);
  EXPECT_EQ(t.row_count(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Table, EnforcesRowDiscipline) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add("x"), std::logic_error);  // add before new_row
  t.new_row().add("1").add("2");
  EXPECT_THROW(t.add("3"), std::logic_error);  // overflow
  t.new_row().add("1");
  EXPECT_THROW(t.new_row(), std::logic_error);  // incomplete previous row
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.new_row().add("a,b");
  t.new_row().add("q\"q");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

TEST(Table, WriteCsvCreatesDirectories) {
  const std::string dir = testing::TempDir() + "/fs_table_test";
  std::filesystem::remove_all(dir);
  Table t({"a"});
  t.new_row().add(1);
  t.write_csv(dir + "/nested/out.csv");
  std::ifstream in(dir + "/nested/out.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
}

// ---------- monotonic clock ----------

TEST(MonotonicSeconds, NonNegativeAndMonotonic) {
  const double t1 = monotonic_seconds();
  const double t2 = monotonic_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

// ---------- error taxonomy & diagnostics ----------

TEST(Error, CarriesCodeAndPrefixesWhat) {
  const ParseError e("bad line 7");
  EXPECT_EQ(e.code(), ErrorCode::kParse);
  EXPECT_EQ(std::string(e.what()), "ParseError: bad line 7");
  // The taxonomy stays catchable through the legacy base classes.
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw CorruptCheckpoint("x"), std::runtime_error);
  try {
    throw ConvergenceError("diverged");
  } catch (const Error& caught) {
    EXPECT_EQ(caught.code(), ErrorCode::kConvergence);
  }
}

TEST(Error, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (ErrorCode code :
       {ErrorCode::kIo, ErrorCode::kParse, ErrorCode::kNumeric,
        ErrorCode::kCorruptCheckpoint, ErrorCode::kConvergence})
    names.insert(error_code_name(code));
  EXPECT_EQ(names.size(), 5u);
}

TEST(Diagnostics, CollectsAndSummarizes) {
  Diagnostics diag;
  EXPECT_TRUE(diag.empty());
  EXPECT_FALSE(diag.has_errors());
  diag.report(Severity::kWarning, ErrorCode::kParse, "loader",
              "3 lines quarantined");
  diag.report(Severity::kError, ErrorCode::kNumeric, "pipeline",
              "phase 2 diverged");
  EXPECT_EQ(diag.entries().size(), 2u);
  EXPECT_EQ(diag.count(Severity::kWarning), 1u);
  EXPECT_EQ(diag.count(Severity::kError), 1u);
  EXPECT_TRUE(diag.has_errors());
  const std::string text = diag.to_string();
  EXPECT_NE(text.find("loader"), std::string::npos);
  EXPECT_NE(text.find("phase 2 diverged"), std::string::npos);
  diag.clear();
  EXPECT_TRUE(diag.empty());
}

}  // namespace
}  // namespace fs::util
