// fs::store subsystem tests: the SNAP -> store -> Dataset round-trip
// property (byte-identical to loading the SNAP files directly, quarantine
// census preserved), rejection of truncated and bit-flipped files with the
// structured CorruptStore error, the atomic-conversion failpoints, and the
// row-stripe / resident-page accessors the sharded path leans on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/loader.h"
#include "data/synthetic.h"
#include "store/convert.h"
#include "store/format.h"
#include "store/store.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace fs {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Writes a synthetic world as SNAP files and returns (checkins, edges).
std::pair<std::string, std::string> write_world(const std::string& dir,
                                                std::uint64_t seed,
                                                std::size_t users = 50) {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = users;
  cfg.poi_count = 120;
  cfg.weeks = 3;
  cfg.seed = seed;
  const data::SyntheticWorld world = data::generate_world(cfg);
  const std::string checkins = dir + "/checkins.txt";
  const std::string edges = dir + "/edges.txt";
  data::save_checkins_snap(world.dataset, checkins, edges);
  return {checkins, edges};
}

void expect_datasets_identical(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.user_count(), b.user_count());
  ASSERT_EQ(a.poi_count(), b.poi_count());
  ASSERT_EQ(a.checkin_count(), b.checkin_count());
  EXPECT_EQ(a.window_begin(), b.window_begin());
  EXPECT_EQ(a.window_end(), b.window_end());
  for (std::size_t i = 0; i < a.poi_count(); ++i) {
    const auto id = static_cast<data::PoiId>(i);
    EXPECT_EQ(a.poi(id).location.lat, b.poi(id).location.lat);
    EXPECT_EQ(a.poi(id).location.lng, b.poi(id).location.lng);
    EXPECT_EQ(a.poi(id).category, b.poi(id).category);
  }
  for (std::size_t i = 0; i < a.checkin_count(); ++i) {
    const data::CheckIn& x = a.checkins()[i];
    const data::CheckIn& y = b.checkins()[i];
    EXPECT_EQ(x.user, y.user) << "row " << i;
    EXPECT_EQ(x.poi, y.poi) << "row " << i;
    EXPECT_EQ(x.time, y.time) << "row " << i;
    EXPECT_EQ(x.location.lat, y.location.lat) << "row " << i;
    EXPECT_EQ(x.location.lng, y.location.lng) << "row " << i;
  }
  EXPECT_EQ(a.friendships().edges(), b.friendships().edges());
}

// ---------- round trip ----------

TEST(Store, RoundTripMatchesDirectLoad) {
  const std::string dir = fresh_dir("fs_store_roundtrip");
  const auto [checkins, edges] = write_world(dir, 21);
  const std::string path = dir + "/world.fsst";

  store::ConvertOptions options;
  options.sigma = 30;
  const store::ConvertStats stats =
      store::convert_snap_to_store(checkins, edges, path, options);
  EXPECT_GT(stats.rows, 0u);
  EXPECT_EQ(stats.file_bytes, std::filesystem::file_size(path));

  const data::Dataset direct = data::load_checkins_snap(checkins, edges);
  const store::MappedStore mapped = store::MappedStore::open(path);
  EXPECT_EQ(mapped.row_count(), direct.checkin_count());
  // Dataset::build re-sorts by (user, time, poi) — a total order over
  // distinct SNAP records — so the (cell, slot)-ordered store materializes
  // the byte-identical Dataset.
  expect_datasets_identical(mapped.to_dataset(), direct);
}

TEST(Store, ConversionIsDeterministic) {
  const std::string dir = fresh_dir("fs_store_determinism");
  const auto [checkins, edges] = write_world(dir, 22);
  store::ConvertOptions options;
  options.sigma = 25;
  store::convert_snap_to_store(checkins, edges, dir + "/a.fsst", options);
  store::convert_snap_to_store(checkins, edges, dir + "/b.fsst", options);
  std::ifstream a(dir + "/a.fsst", std::ios::binary);
  std::ifstream b(dir + "/b.fsst", std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(Store, QuarantineCensusSurvivesConversion) {
  const std::string dir = fresh_dir("fs_store_census");
  const auto [checkins, edges] = write_world(dir, 23);
  {
    // Dirty the inputs: a short line, a bad timestamp, an out-of-range
    // coordinate, and a short edge line.
    std::ofstream c(checkins, std::ios::app);
    c << "7\t2010-01-01T00:00:00Z\n";
    c << "7\tnot-a-date\t10.0\t10.0\t3\n";
    c << "7\t2010-01-01T00:00:00Z\t95.0\t10.0\t3\n";
    std::ofstream e(edges, std::ios::app);
    e << "11\n";
  }
  store::ConvertOptions options;
  options.load.strictness = data::Strictness::kPermissive;
  data::LoadReport at_convert;
  store::convert_snap_to_store(checkins, edges, dir + "/dirty.fsst", options,
                               &at_convert);
  EXPECT_EQ(at_convert.short_lines, 1u);
  EXPECT_EQ(at_convert.bad_timestamps, 1u);
  EXPECT_EQ(at_convert.out_of_range_coords, 1u);
  EXPECT_EQ(at_convert.short_edge_lines, 1u);

  const store::MappedStore mapped = store::MappedStore::open(dir + "/dirty.fsst");
  const data::LoadReport persisted = mapped.load_report();
  EXPECT_EQ(persisted.checkin_lines, at_convert.checkin_lines);
  EXPECT_EQ(persisted.accepted_checkins, at_convert.accepted_checkins);
  EXPECT_EQ(persisted.short_lines, at_convert.short_lines);
  EXPECT_EQ(persisted.bad_timestamps, at_convert.bad_timestamps);
  EXPECT_EQ(persisted.bad_numbers, at_convert.bad_numbers);
  EXPECT_EQ(persisted.out_of_range_coords, at_convert.out_of_range_coords);
  EXPECT_EQ(persisted.edge_lines, at_convert.edge_lines);
  EXPECT_EQ(persisted.accepted_edges, at_convert.accepted_edges);
  EXPECT_EQ(persisted.short_edge_lines, at_convert.short_edge_lines);
  EXPECT_EQ(persisted.bad_edge_numbers, at_convert.bad_edge_numbers);
  EXPECT_EQ(persisted.users_below_activity_floor,
            at_convert.users_below_activity_floor);
  EXPECT_EQ(persisted.users_dropped_by_cap, at_convert.users_dropped_by_cap);
}

TEST(Store, StrictConversionThrowsOnDirtyInput) {
  const std::string dir = fresh_dir("fs_store_strict");
  const auto [checkins, edges] = write_world(dir, 24);
  {
    std::ofstream c(checkins, std::ios::app);
    c << "7\tnot-a-date\t10.0\t10.0\t3\n";
  }
  store::ConvertOptions options;  // strict by default
  EXPECT_THROW(store::convert_snap_to_store(checkins, edges,
                                            dir + "/strict.fsst", options),
               ParseError);
  EXPECT_FALSE(std::filesystem::exists(dir + "/strict.fsst"));
}

// ---------- corruption rejection ----------

struct StoreFixture {
  std::string dir;
  std::string path;
  std::size_t file_bytes = 0;

  explicit StoreFixture(const std::string& name, std::uint64_t seed) {
    dir = fresh_dir(name);
    const auto [checkins, edges] = write_world(dir, seed);
    path = dir + "/world.fsst";
    store::ConvertOptions options;
    options.sigma = 30;
    file_bytes = store::convert_snap_to_store(checkins, edges, path, options)
                     .file_bytes;
  }

  void flip_byte(std::size_t offset) const {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  void truncate_to(std::size_t bytes) const {
    std::filesystem::resize_file(path, bytes);
  }
};

void expect_corrupt(const std::string& path,
                    store::Verify verify = store::Verify::kFull) {
  try {
    store::MappedStore::open(path, verify);
    FAIL() << "corrupted store was accepted";
  } catch (const CorruptStore& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptStore);
  }
}

TEST(StoreCorruption, TruncationRejected) {
  const StoreFixture fx("fs_store_trunc", 31);
  fx.truncate_to(fx.file_bytes - 8);
  // The exact-size equation fires even header-only: truncation is visible
  // without touching a single payload page.
  expect_corrupt(fx.path, store::Verify::kHeaderOnly);
  expect_corrupt(fx.path, store::Verify::kFull);
}

TEST(StoreCorruption, TruncationBelowHeaderRejected) {
  const StoreFixture fx("fs_store_trunc_hdr", 32);
  fx.truncate_to(64);
  expect_corrupt(fx.path, store::Verify::kHeaderOnly);
}

TEST(StoreCorruption, HeaderBitFlipRejected) {
  // A flip anywhere in the header trips the header CRC (or the magic check
  // before it) — header-only verification is enough.
  const StoreFixture fx("fs_store_flip_hdr", 33);
  fx.flip_byte(40);  // inside the count fields
  expect_corrupt(fx.path, store::Verify::kHeaderOnly);
}

TEST(StoreCorruption, ColumnBitFlipRejected) {
  const StoreFixture fx("fs_store_flip_col", 34);
  fx.flip_byte(store::kHeaderBytes + 13);  // first payload block
  expect_corrupt(fx.path, store::Verify::kFull);
}

TEST(StoreCorruption, ChecksumSectionBitFlipRejected) {
  const StoreFixture fx("fs_store_flip_crc", 35);
  fx.flip_byte(fx.file_bytes - 6);  // inside the CRC section
  expect_corrupt(fx.path, store::Verify::kFull);
}

TEST(StoreCorruption, HeaderOnlySkipsPayloadChecks) {
  // The documented kHeaderOnly contract: a payload flip passes the O(1)
  // header checks and is only caught by full verification.
  const StoreFixture fx("fs_store_headeronly", 36);
  fx.flip_byte(store::kHeaderBytes + 13);
  EXPECT_NO_THROW(store::MappedStore::open(fx.path,
                                           store::Verify::kHeaderOnly));
  expect_corrupt(fx.path, store::Verify::kFull);
}

TEST(StoreCorruption, NotAStoreRejected) {
  const std::string dir = fresh_dir("fs_store_notastore");
  const std::string path = dir + "/garbage.fsst";
  std::ofstream(path) << std::string(4096, 'x');
  expect_corrupt(path, store::Verify::kHeaderOnly);
}

TEST(StoreCorruption, MissingFileIsIoErrorNotCorrupt) {
  EXPECT_THROW(store::MappedStore::open("/nonexistent/nowhere.fsst"), IoError);
}

// ---------- conversion failpoints ----------

TEST(StoreConvert, IoFailpointCleansUpTmp) {
  const std::string dir = fresh_dir("fs_store_fp_io");
  const auto [checkins, edges] = write_world(dir, 41);
  const std::string path = dir + "/world.fsst";
  util::failpoint::activate("store.convert.io",
                            util::failpoint::Action::kError, 1);
  EXPECT_THROW(store::convert_snap_to_store(checkins, edges, path, {}),
               IoError);
  util::failpoint::clear();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // The retry converges: same inputs, clean run, valid store.
  store::convert_snap_to_store(checkins, edges, path, {});
  EXPECT_NO_THROW(store::MappedStore::open(path));
}

TEST(StoreConvert, KillFailpointLeavesTmpNeverFinal) {
  const std::string dir = fresh_dir("fs_store_fp_kill");
  const auto [checkins, edges] = write_world(dir, 42);
  const std::string path = dir + "/world.fsst";
  util::failpoint::activate("store.convert.kill",
                            util::failpoint::Action::kError, 1);
  EXPECT_THROW(store::convert_snap_to_store(checkins, edges, path, {}),
               util::failpoint::InjectedKill);
  util::failpoint::clear();
  // A kill after the payload write but before the rename behaves like a real
  // crash: the tmp survives, the final path never appears.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  store::convert_snap_to_store(checkins, edges, path, {});
  EXPECT_NO_THROW(store::MappedStore::open(path));
}

// ---------- accessors the sharded path uses ----------

TEST(Store, RowStripesMatchLinearScan) {
  const StoreFixture fx("fs_store_stripes", 51);
  const store::MappedStore mapped = store::MappedStore::open(fx.path);
  const auto cell_col = mapped.cells();
  const auto grid_count =
      static_cast<std::uint32_t>(mapped.header().grid_count);
  std::size_t covered = 0;
  for (std::uint32_t lo = 0; lo < grid_count; lo += 3) {
    const std::uint32_t hi = std::min(lo + 3, grid_count);
    const auto [row_lo, row_hi] = mapped.rows_for_grids(lo, hi);
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      EXPECT_GE(cell_col[i], lo);
      EXPECT_LT(cell_col[i], hi);
    }
    if (row_lo > 0) EXPECT_LT(cell_col[row_lo - 1], lo);
    if (row_hi < cell_col.size()) EXPECT_GE(cell_col[row_hi], hi);
    covered += row_hi - row_lo;
  }
  EXPECT_EQ(covered, mapped.row_count());
}

TEST(Store, ResidentBytesIsBoundedAndReleaseIsSafe) {
  const StoreFixture fx("fs_store_resident", 52);
  const store::MappedStore mapped = store::MappedStore::open(fx.path);
  const std::size_t rounded_up =
      ((mapped.file_bytes() + 4095) / 4096 + 1) * 4096;
  // Full verification touched every page; the census can never exceed the
  // mapping (rounded up to whole pages).
  EXPECT_LE(mapped.resident_bytes(), rounded_up);
  // release_pages is advisory: MADV_DONTNEED drops any privately-faulted
  // copies, but mincore reports *page-cache* residency for file-backed
  // mappings, which the kernel is free to keep. The contract under test is
  // that release never breaks the mapping and the census stays bounded.
  mapped.release_pages();
  EXPECT_LE(mapped.resident_bytes(), rounded_up);
  EXPECT_EQ(mapped.cells().size(), mapped.row_count());  // still readable
  EXPECT_NO_THROW(mapped.to_dataset());
}

TEST(Store, SortFingerprintIsOrderSensitive) {
  const std::vector<std::uint32_t> cells = {1, 2, 3};
  const std::vector<std::uint32_t> slots = {0, 1, 0};
  const std::vector<std::uint32_t> cells_swapped = {2, 1, 3};
  EXPECT_NE(store::sort_fingerprint({cells.data(), 3}, {slots.data(), 3}),
            store::sort_fingerprint({cells_swapped.data(), 3},
                                    {slots.data(), 3}));
}

}  // namespace
}  // namespace fs
