// Resume-equivalence: a pipeline run killed at ANY phase-2 iteration
// boundary and resumed from its checkpoint must produce results
// byte-identical to an uninterrupted run. This is the invariant the chaos
// harness leans on — without it, a resumed run silently computes a
// different attack than the one that was interrupted.
//
// The kill is injected via the `pipeline.iteration.abort` failpoint, which
// throws InjectedKill right after the checkpoint save — the closest
// in-process analogue of SIGKILL at the iteration boundary.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "graph/metrics.h"
#include "util/failpoint.h"

namespace fs {
namespace {

namespace fp = util::failpoint;

struct Experiment {
  data::Dataset dataset;
  eval::PairSplit split;
  core::FriendSeekerConfig config;
};

Experiment make_experiment() {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 90;
  world_cfg.poi_count = 240;
  world_cfg.city_count = 3;
  world_cfg.weeks = 4;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  const eval::LabeledPairs pairs = eval::sample_candidate_pairs(world.dataset);
  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 3;
  cfg.presence.max_autoencoder_rows = 120;
  cfg.max_iterations = 3;
  // Never converge early: every run executes all three iterations, so the
  // kill schedule below covers every boundary.
  cfg.convergence_threshold = 0.0;
  return {world.dataset, eval::split_pairs(pairs, 0.7, 5), cfg};
}

core::FriendSeekerResult run_once(const Experiment& exp,
                                  const core::FriendSeekerConfig& cfg) {
  core::FriendSeeker seeker(cfg);
  return seeker.run(exp.dataset, exp.split.train_pairs,
                    exp.split.train_labels, exp.split.test_pairs);
}

/// Byte-level equality for the double score vectors: bitwise identity, not
/// approximate closeness, is the contract.
bool bytes_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class ResumeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear(); }
  void TearDown() override { fp::clear(); }
};

TEST_F(ResumeEquivalenceTest, KilledAtEveryBoundaryMatchesUninterrupted) {
  const Experiment exp = make_experiment();
  const core::FriendSeekerResult baseline = run_once(exp, exp.config);
  ASSERT_EQ(baseline.iterations_run, exp.config.max_iterations);

  for (int boundary = 1; boundary <= exp.config.max_iterations; ++boundary) {
    SCOPED_TRACE("kill after iteration " + std::to_string(boundary));
    const std::string dir = testing::TempDir() + "/fs_resume_eq_" +
                            std::to_string(boundary);
    std::filesystem::remove_all(dir);

    core::FriendSeekerConfig cfg = exp.config;
    cfg.checkpoint_dir = dir;
    fp::clear();
    fp::Config abort_cfg;
    abort_cfg.action = fp::Action::kError;
    abort_cfg.skip = boundary - 1;  // fire at the boundary-th evaluation
    abort_cfg.limit = 1;
    fp::activate("pipeline.iteration.abort", abort_cfg);

    bool killed = false;
    try {
      (void)run_once(exp, cfg);
    } catch (const fp::InjectedKill&) {
      killed = true;
    }
    ASSERT_TRUE(killed);
    // The kill fires after the save: the checkpoint must be complete, and
    // no torn temp file may exist.
    ASSERT_TRUE(std::filesystem::exists(dir + "/checkpoint.fsck"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/checkpoint.fsck.tmp"));

    cfg.resume = true;
    const core::FriendSeekerResult resumed = run_once(exp, cfg);
    EXPECT_EQ(resumed.resumed_from_iteration, boundary);
    // A kill after the final iteration leaves nothing to recompute: the
    // resumed process replays 0 iterations and serves the checkpoint.
    EXPECT_EQ(resumed.iterations_run,
              boundary < exp.config.max_iterations
                  ? exp.config.max_iterations
                  : 0);

    // Byte-identical outcome: predictions, decision scores, and the final
    // graph all match the uninterrupted run exactly.
    EXPECT_EQ(resumed.test_predictions, baseline.test_predictions);
    EXPECT_TRUE(bytes_equal(resumed.test_scores, baseline.test_scores));
    EXPECT_EQ(resumed.final_graph.edge_count(),
              baseline.final_graph.edge_count());
    EXPECT_DOUBLE_EQ(graph::edge_change_ratio(resumed.final_graph,
                                              baseline.final_graph),
                     0.0);
  }
}

TEST_F(ResumeEquivalenceTest, DoubleKillStillConverges) {
  // Two kills in one logical run: the first fresh attempt dies after
  // iteration 1, the resumed attempt dies after iteration 2, and the third
  // attempt finishes. Still byte-identical to the uninterrupted run.
  const Experiment exp = make_experiment();
  const core::FriendSeekerResult baseline = run_once(exp, exp.config);

  const std::string dir = testing::TempDir() + "/fs_resume_eq_double";
  std::filesystem::remove_all(dir);
  core::FriendSeekerConfig cfg = exp.config;
  cfg.checkpoint_dir = dir;
  fp::Config abort_cfg;
  abort_cfg.action = fp::Action::kError;
  abort_cfg.limit = 2;  // the first two boundary evaluations both kill
  fp::activate("pipeline.iteration.abort", abort_cfg);

  int kills = 0;
  core::FriendSeekerResult final_result;
  for (;;) {
    try {
      final_result = run_once(exp, cfg);
      break;
    } catch (const fp::InjectedKill&) {
      ++kills;
      ASSERT_LE(kills, 3) << "kill budget must exhaust";
      cfg.resume = true;
    }
  }
  EXPECT_EQ(kills, 2);
  EXPECT_EQ(final_result.test_predictions, baseline.test_predictions);
  EXPECT_TRUE(bytes_equal(final_result.test_scores, baseline.test_scores));
  EXPECT_DOUBLE_EQ(graph::edge_change_ratio(final_result.final_graph,
                                            baseline.final_graph),
                   0.0);
}

}  // namespace
}  // namespace fs
