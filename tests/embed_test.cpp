#include <gtest/gtest.h>

#include "embed/skipgram.h"
#include "embed/walks.h"

namespace fs::embed {
namespace {

// ---------- WeightedGraph ----------

TEST(WeightedGraph, AddWeightAccumulates) {
  WeightedGraph g(3);
  g.add_weight(0, 1, 1.0);
  g.add_weight(0, 1, 2.0);
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(g.neighbors(1)[0].weight, 3.0);  // symmetric
}

TEST(WeightedGraph, Validation) {
  WeightedGraph g(2);
  EXPECT_THROW(g.add_weight(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_weight(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_weight(0, 1, -1.0), std::invalid_argument);
}

TEST(WeightedGraph, WalkStopsAtDeadEnd) {
  WeightedGraph g(3);
  // 0 connected to 1 only via directed-ish setup is impossible (symmetric),
  // so use an isolated start.
  util::Rng rng(7);
  const auto walk = g.random_walk(2, 10, rng);
  EXPECT_EQ(walk, (std::vector<VocabId>{2}));
}

TEST(WeightedGraph, WalkHasRequestedLength) {
  WeightedGraph g(4);
  g.add_weight(0, 1, 1.0);
  g.add_weight(1, 2, 1.0);
  g.add_weight(2, 3, 1.0);
  g.add_weight(3, 0, 1.0);
  util::Rng rng(11);
  const auto walk = g.random_walk(0, 15, rng);
  EXPECT_EQ(walk.size(), 15u);
  EXPECT_EQ(walk.front(), 0u);
  // Every consecutive pair must be an edge.
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    bool found = false;
    for (const auto& n : g.neighbors(walk[i])) found |= n.node == walk[i + 1];
    EXPECT_TRUE(found);
  }
}

TEST(WeightedGraph, WalkFollowsWeights) {
  // Node 0 has neighbors 1 (weight 99) and 2 (weight 1): the walk should
  // visit 1 overwhelmingly more often.
  WeightedGraph g(3);
  g.add_weight(0, 1, 99.0);
  g.add_weight(0, 2, 1.0);
  util::Rng rng(13);
  std::size_t to_heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto walk = g.random_walk(0, 2, rng);
    ASSERT_EQ(walk.size(), 2u);
    to_heavy += walk[1] == 1;
  }
  EXPECT_GT(to_heavy, 1900u);
}

TEST(GenerateWalks, SkipsIsolatedAndCoversActive) {
  WeightedGraph g(5);
  g.add_weight(0, 1, 1.0);
  g.add_weight(2, 3, 1.0);
  // Node 4 is isolated.
  util::Rng rng(17);
  WalkConfig cfg;
  cfg.walks_per_node = 3;
  cfg.walk_length = 5;
  const auto corpus = generate_walks(g, cfg, rng);
  EXPECT_EQ(corpus.size(), 4u * 3u);  // 4 connected nodes x 3 walks
  for (const auto& walk : corpus)
    for (VocabId v : walk) EXPECT_NE(v, 4u);
}

// ---------- skip-gram ----------

TEST(SkipGram, TwoCliquesSeparateInEmbeddingSpace) {
  // Two 5-cliques joined by a single bridge: intra-clique similarity must
  // exceed inter-clique similarity.
  WeightedGraph g(10);
  for (VocabId a = 0; a < 5; ++a)
    for (VocabId b = a + 1; b < 5; ++b) g.add_weight(a, b, 1.0);
  for (VocabId a = 5; a < 10; ++a)
    for (VocabId b = a + 1; b < 10; ++b) g.add_weight(a, b, 1.0);
  g.add_weight(4, 5, 0.2);  // weak bridge

  util::Rng rng(19);
  WalkConfig walk_cfg;
  walk_cfg.walks_per_node = 20;
  walk_cfg.walk_length = 10;
  const auto corpus = generate_walks(g, walk_cfg, rng);

  SkipGramConfig sg;
  sg.dim = 16;
  sg.epochs = 5;
  sg.seed = 23;
  const nn::Matrix emb = train_skipgram(corpus, 10, sg);

  double intra = 0.0, inter = 0.0;
  std::size_t intra_n = 0, inter_n = 0;
  for (VocabId a = 0; a < 10; ++a)
    for (VocabId b = a + 1; b < 10; ++b) {
      const double sim = cosine_similarity(emb, a, b);
      if ((a < 5) == (b < 5)) {
        intra += sim;
        ++intra_n;
      } else {
        inter += sim;
        ++inter_n;
      }
    }
  EXPECT_GT(intra / static_cast<double>(intra_n),
            inter / static_cast<double>(inter_n) + 0.15);
}

TEST(SkipGram, EmbeddingShape) {
  const std::vector<std::vector<VocabId>> corpus{{0, 1, 2, 1, 0}};
  SkipGramConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  const nn::Matrix emb = train_skipgram(corpus, 3, cfg);
  EXPECT_EQ(emb.rows(), 3u);
  EXPECT_EQ(emb.cols(), 8u);
}

TEST(SkipGram, Validation) {
  SkipGramConfig cfg;
  EXPECT_THROW(train_skipgram({}, 0, cfg), std::invalid_argument);
  const std::vector<std::vector<VocabId>> bad{{0, 9}};
  EXPECT_THROW(train_skipgram(bad, 3, cfg), std::out_of_range);
}

TEST(SkipGram, CosineOfZeroVectorIsZero) {
  nn::Matrix emb(2, 4);
  emb(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(cosine_similarity(emb, 0, 1), 0.0);
}

TEST(SkipGram, CosineOfIdenticalRowsIsOne) {
  nn::Matrix emb(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    emb(0, c) = 1.0 + static_cast<double>(c);
    emb(1, c) = emb(0, c);
  }
  EXPECT_NEAR(cosine_similarity(emb, 0, 1), 1.0, 1e-12);
}

TEST(SkipGram, Deterministic) {
  WeightedGraph g(6);
  for (VocabId v = 0; v < 5; ++v) g.add_weight(v, v + 1, 1.0);
  util::Rng rng_a(29), rng_b(29);
  WalkConfig wc;
  const auto corpus_a = generate_walks(g, wc, rng_a);
  const auto corpus_b = generate_walks(g, wc, rng_b);
  SkipGramConfig sg;
  sg.dim = 4;
  const nn::Matrix ea = train_skipgram(corpus_a, 6, sg);
  const nn::Matrix eb = train_skipgram(corpus_b, 6, sg);
  for (std::size_t i = 0; i < ea.size(); ++i)
    EXPECT_DOUBLE_EQ(ea.data()[i], eb.data()[i]);
}

}  // namespace
}  // namespace fs::embed
