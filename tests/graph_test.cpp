#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/heuristics.h"
#include "graph/khop.h"
#include "graph/metrics.h"

namespace fs::graph {
namespace {

// ---------- Graph ----------

TEST(Graph, AddAndQueryEdges) {
  Graph g(5);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(g.add_edge(2, 2));  // self loop
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, RemoveEdge) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, NeighborsSorted) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  const auto& nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(Graph, EdgesCanonicalOrder) {
  Graph g(4);
  g.add_edge(2, 1);
  g.add_edge(3, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.a, e.b);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(Graph, OutOfRangeThrows) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(g.remove_edge(5, 0), std::out_of_range);
  EXPECT_FALSE(g.has_edge(0, 99));  // has_edge is a query: false, not throw
}

TEST(Graph, CommonNeighbors) {
  Graph g(6);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  const auto common = g.common_neighbors(0, 1);
  EXPECT_EQ(common, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(g.common_neighbor_count(0, 1), 2u);
  EXPECT_EQ(g.common_neighbor_count(0, 4), 0u);
}

TEST(Graph, SymmetricDifference) {
  Graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  EXPECT_EQ(Graph::edge_symmetric_difference(a, b), 2u);
  EXPECT_EQ(Graph::edge_symmetric_difference(a, a), 0u);
  Graph c(5);
  EXPECT_THROW(Graph::edge_symmetric_difference(a, c),
               std::invalid_argument);
}

TEST(Graph, FromEdges) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {2, 3}, {1, 0}});
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
}

// ---------- k-hop reachable subgraph ----------

TEST(KHop, DirectEdgeIsIgnored) {
  Graph g(2);
  g.add_edge(0, 1);
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1);
  EXPECT_TRUE(sub.empty());
}

TEST(KHop, FindsTwoHopPath) {
  Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1);
  ASSERT_EQ(sub.path_count_of_length(2), 1u);
  EXPECT_EQ(sub.paths_by_length[0][0], (Path{0, 2, 1}));
  EXPECT_EQ(sub.path_count_of_length(3), 0u);
}

TEST(KHop, ShortPathExcludesItsInteriorFromLongerPaths) {
  // 0-2-1 (length 2) and 0-2-3-1 (length 3 through the same interior 2).
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1);
  EXPECT_EQ(sub.path_count_of_length(2), 1u);
  // The only length-3 path 0-2-3-1 reuses node 2, so it must be pruned.
  EXPECT_EQ(sub.path_count_of_length(3), 0u);
}

TEST(KHop, Figure4Example) {
  // The paper's Fig 4: between a and b,
  //   a-c-b and a-d-b survive as 2-hop paths,
  //   a-f-g-... style longer paths through used vertices are dropped.
  // Construct: a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7 with
  //   a-c, c-b        (2-path)
  //   a-d, d-b        (2-path)
  //   a-c, c-e, e-b   (3-path through used c -> dropped)
  //   a-f, f-h, h-b   (3-path, fresh vertices -> kept)
  //   f-g, g-h        (4-path a-f-g-h-b shares edge endpoints with the kept
  //                    3-path -> dropped because f, h are consumed)
  Graph g(8);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  g.add_edge(2, 4);
  g.add_edge(4, 1);
  g.add_edge(0, 5);
  g.add_edge(5, 7);
  g.add_edge(7, 1);
  g.add_edge(5, 6);
  g.add_edge(6, 7);
  KHopOptions options;
  options.k = 4;
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1, options);
  EXPECT_EQ(sub.path_count_of_length(2), 2u);  // via c and via d
  ASSERT_EQ(sub.path_count_of_length(3), 1u);  // a-f-h-b
  EXPECT_EQ(sub.paths_by_length[1][0], (Path{0, 5, 7, 1}));
  EXPECT_EQ(sub.path_count_of_length(4), 0u);  // a-f-g-h-b consumed
}

TEST(KHop, PathsOfDifferentLengthsShareNoEdges) {
  // Theorem 1 property 2, checked on random small-world graphs.
  util::Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = watts_strogatz(60, 6, 0.3, rng);
    const NodeId a = static_cast<NodeId>(rng.index(60));
    NodeId b = static_cast<NodeId>(rng.index(60));
    if (a == b) continue;
    KHopOptions options;
    options.k = 4;
    const KHopSubgraph sub = extract_khop_subgraph(g, a, b, options);
    std::set<Edge> seen;
    for (std::size_t bucket = 0; bucket < sub.paths_by_length.size();
         ++bucket) {
      std::set<Edge> this_length;
      for (const Path& path : sub.paths_by_length[bucket])
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
          this_length.insert(Edge(path[i], path[i + 1]));
      for (const Edge& e : this_length) {
        EXPECT_EQ(seen.count(e), 0u)
            << "edge reused across lengths in trial " << trial;
        seen.insert(e);
      }
    }
  }
}

TEST(KHop, AllRetainedPathsAreInduced) {
  // Theorem 1 property 1: no retained path has a chord in the original
  // graph between non-adjacent path vertices... except via a and b
  // themselves, which stay in the working graph. The guarantee the
  // construction gives is: no chord between interior vertices.
  util::Rng rng(67);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = watts_strogatz(50, 6, 0.2, rng);
    const NodeId a = static_cast<NodeId>(rng.index(50));
    NodeId b = static_cast<NodeId>((a + 1 + rng.index(48)) % 50);
    KHopOptions options;
    options.k = 4;
    const KHopSubgraph sub = extract_khop_subgraph(g, a, b, options);
    for (const auto& bucket : sub.paths_by_length)
      for (const Path& path : bucket)
        for (std::size_t i = 1; i + 1 < path.size(); ++i)
          for (std::size_t j = i + 2; j + 1 < path.size(); ++j)
            EXPECT_FALSE(g.has_edge(path[i], path[j]))
                << "interior chord in retained path";
  }
}

TEST(KHop, PathEndpointsAlwaysAAndB) {
  util::Rng rng(71);
  const Graph g = barabasi_albert(80, 3, rng);
  KHopOptions options;
  options.k = 5;
  const KHopSubgraph sub = extract_khop_subgraph(g, 4, 61, options);
  for (const auto& bucket : sub.paths_by_length)
    for (const Path& path : bucket) {
      EXPECT_EQ(path.front(), 4u);
      EXPECT_EQ(path.back(), 61u);
    }
}

TEST(KHop, RespectsPathCap) {
  // Complete-ish graph: many 2-paths; the cap must bound the output.
  util::Rng rng(73);
  const Graph g = erdos_renyi(40, 0.9, rng);
  KHopOptions options;
  options.k = 3;
  options.max_paths_per_length = 5;
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1, options);
  EXPECT_LE(sub.path_count_of_length(2), 5u);
  EXPECT_LE(sub.path_count_of_length(3), 5u);
}

TEST(KHop, RejectsBadArguments) {
  Graph g(3);
  KHopOptions options;
  options.k = 1;
  EXPECT_THROW(extract_khop_subgraph(g, 0, 1, options),
               std::invalid_argument);
  EXPECT_THROW(extract_khop_subgraph(g, 0, 0), std::invalid_argument);
  EXPECT_THROW(extract_khop_subgraph(g, 0, 9), std::out_of_range);
}

TEST(KHop, EdgesAreDeduplicated) {
  Graph g(5);
  // Two 2-paths sharing no edges plus their edges listed once.
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  const KHopSubgraph sub = extract_khop_subgraph(g, 0, 1);
  const auto edges = sub.edges();
  EXPECT_EQ(edges.size(), 4u);
  const std::set<Edge> distinct(edges.begin(), edges.end());
  EXPECT_EQ(distinct.size(), edges.size());
}

namespace oracle {

/// Independent reference implementation of the k-hop reachable subgraph:
/// enumerate ALL simple a->b paths up to length k on the untouched graph
/// first, then replay the paper's round-by-round exclusion on the lists.
std::vector<std::vector<Path>> khop_reference(const Graph& g, NodeId a,
                                              NodeId b, int k) {
  // Full enumeration of simple paths by length.
  std::vector<std::vector<Path>> all(static_cast<std::size_t>(k - 1));
  Path stack{a};
  std::vector<char> on_stack(g.node_count(), 0);
  on_stack[a] = 1;
  std::function<void()> dfs = [&]() {
    const NodeId v = stack.back();
    if (static_cast<int>(stack.size()) > k) return;
    for (NodeId w : g.neighbors(v)) {
      if (w == b) {
        const int len = static_cast<int>(stack.size());
        if (len >= 2 && len <= k) {
          Path path = stack;
          path.push_back(b);
          all[static_cast<std::size_t>(len - 2)].push_back(path);
        }
        continue;
      }
      if (on_stack[w]) continue;
      stack.push_back(w);
      on_stack[w] = 1;
      dfs();
      on_stack[w] = 0;
      stack.pop_back();
    }
  };
  dfs();

  // Replay the exclusion rounds.
  std::vector<char> excluded(g.node_count(), 0);
  std::vector<std::vector<Path>> kept(static_cast<std::size_t>(k - 1));
  for (int len = 2; len <= k; ++len) {
    auto& bucket = all[static_cast<std::size_t>(len - 2)];
    std::sort(bucket.begin(), bucket.end());
    for (const Path& path : bucket) {
      bool usable = true;
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        usable &= !excluded[path[i]];
      if (usable) kept[static_cast<std::size_t>(len - 2)].push_back(path);
    }
    for (const Path& path : kept[static_cast<std::size_t>(len - 2)])
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        excluded[path[i]] = 1;
  }
  return kept;
}

}  // namespace oracle

TEST(KHop, MatchesBruteForceOracle) {
  util::Rng rng(113);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi(24, 0.12, rng);
    const NodeId a = static_cast<NodeId>(rng.index(24));
    const NodeId b = static_cast<NodeId>((a + 1 + rng.index(22)) % 24);
    KHopOptions options;
    options.k = 4;
    KHopSubgraph sub = extract_khop_subgraph(g, a, b, options);
    const auto expected = oracle::khop_reference(g, a, b, 4);
    ASSERT_EQ(sub.paths_by_length.size(), expected.size());
    for (std::size_t bucket = 0; bucket < expected.size(); ++bucket) {
      auto mine = sub.paths_by_length[bucket];
      std::sort(mine.begin(), mine.end());
      EXPECT_EQ(mine, expected[bucket])
          << "trial " << trial << " length " << bucket + 2;
    }
  }
}

TEST(KHop, PathCountsHelperMatchesSubgraph) {
  util::Rng rng(79);
  const Graph g = watts_strogatz(40, 4, 0.3, rng);
  KHopOptions options;
  options.k = 4;
  const auto counts = khop_path_counts(g, 2, 17, options);
  const KHopSubgraph sub = extract_khop_subgraph(g, 2, 17, options);
  ASSERT_EQ(counts.size(), 3u);
  for (int len = 2; len <= 4; ++len)
    EXPECT_EQ(counts[static_cast<std::size_t>(len - 2)],
              sub.path_count_of_length(len));
}

// ---------- heuristics ----------

TEST(Heuristics, CommonNeighborsAndJaccard) {
  Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.add_edge(1, 4);
  EXPECT_DOUBLE_EQ(common_neighbors_score(g, 0, 1), 1.0);
  // |N(0) ∪ N(1)| = |{2,3} ∪ {2,4}| = 3.
  EXPECT_DOUBLE_EQ(jaccard_score(g, 0, 1), 1.0 / 3.0);
}

TEST(Heuristics, JaccardZeroForIsolated) {
  Graph g(3);
  EXPECT_DOUBLE_EQ(jaccard_score(g, 0, 1), 0.0);
}

TEST(Heuristics, AdamicAdarSkipsDegreeOne) {
  Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);  // common neighbor 2, degree 2
  g.add_edge(0, 3);
  g.add_edge(1, 3);  // common neighbor 3, degree 2
  const double expected = 2.0 / std::log(2.0);
  EXPECT_NEAR(adamic_adar_score(g, 0, 1), expected, 1e-12);
}

TEST(Heuristics, PreferentialAttachment) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 1);
  EXPECT_DOUBLE_EQ(preferential_attachment_score(g, 0, 3), 2.0);
}

TEST(Heuristics, KatzCountsWeightedWalks) {
  // Path graph 0-1-2: walks from 0 to 2 of length 2 (one), length 4 (two:
  // 0-1-0-1-2, 0-1-2-1-2).
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const double beta = 0.1;
  const double expected = beta * beta * 1 + beta * beta * beta * beta * 2;
  EXPECT_NEAR(katz_score(g, 0, 2, beta, 4), expected, 1e-12);
}

TEST(Heuristics, ShortestPathLength) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(shortest_path_length(g, 0, 3), 3);
  EXPECT_EQ(shortest_path_length(g, 0, 0), 0);
  EXPECT_EQ(shortest_path_length(g, 0, 5), -1);
  EXPECT_EQ(shortest_path_length(g, 0, 3, /*max_depth=*/2), -1);
}

// ---------- generators ----------

TEST(Generators, ErdosRenyiExtremes) {
  util::Rng rng(83);
  const Graph empty = erdos_renyi(20, 0.0, rng);
  EXPECT_EQ(empty.edge_count(), 0u);
  const Graph full = erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(full.edge_count(), 20u * 19u / 2u);
}

TEST(Generators, WattsStrogatzDegreePreservedAtBetaZero) {
  util::Rng rng(89);
  const Graph g = watts_strogatz(30, 4, 0.0, rng);
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.edge_count(), 60u);
}

TEST(Generators, WattsStrogatzKeepsEdgeCountApproximately) {
  util::Rng rng(97);
  const Graph g = watts_strogatz(100, 6, 0.3, rng);
  EXPECT_EQ(g.edge_count(), 300u);  // rewiring moves, never deletes
}

TEST(Generators, WattsStrogatzRejectsBadParams) {
  util::Rng rng(101);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertEdgeCount) {
  util::Rng rng(103);
  const Graph g = barabasi_albert(50, 3, rng);
  // Seed star: 3 edges; each of the remaining 46 nodes adds 3.
  EXPECT_EQ(g.edge_count(), 3u + 46u * 3u);
}

TEST(Generators, BarabasiAlbertIsHeavyTailed) {
  util::Rng rng(107);
  const Graph g = barabasi_albert(300, 2, rng);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(stats.max, 20u);  // hubs emerge
  EXPECT_EQ(stats.isolated, 0u);
}

// ---------- metrics ----------

TEST(Metrics, EdgeChangeRatio) {
  Graph a(4), b(4);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  // Symmetric difference = 2, |E(b)| = 2 -> ratio 1.0.
  EXPECT_DOUBLE_EQ(edge_change_ratio(a, b), 1.0);
  EXPECT_DOUBLE_EQ(edge_change_ratio(a, a), 0.0);
}

TEST(Metrics, ClusteringCoefficient) {
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(triangle, 0), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(triangle), 1.0);

  Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path, 1), 0.0);
}

TEST(Metrics, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
}

TEST(Metrics, DegreeStats) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const DegreeStats stats = degree_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean, 1.0);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.isolated, 1u);
}

TEST(Metrics, SmallWorldPathLengthIsShort) {
  util::Rng rng(109);
  const Graph g = watts_strogatz(200, 6, 0.2, rng);
  const double apl = estimate_average_path_length(g, 20, 7);
  EXPECT_GT(apl, 1.0);
  EXPECT_LT(apl, 8.0);  // small world: ~log(n)
}

}  // namespace
}  // namespace fs::graph
