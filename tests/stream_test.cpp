// Streaming ingestion tests: wire-line validation and poison quarantine,
// the backpressure ring, CRC-framed journal + snapshot durability with
// kill-at-any-point recovery, engine convergence-to-batch, the stream
// failpoint registry, and the FeatureCache delta-invalidation grain the
// serve finalize path relies on.
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "block/feature_cache.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "stream/daemon.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "stream/journal.h"
#include "stream/quarantine.h"
#include "stream/ring.h"
#include "stream/source.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace {

using namespace fs;
namespace fp = util::failpoint;

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "fs_stream_test" /
                   name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

stream::RawEvent must_parse(const std::string& line) {
  stream::RawEvent event;
  const auto reason = stream::parse_event_line(line, event);
  EXPECT_FALSE(reason.has_value())
      << "unexpected reject: " << stream::reject_reason_name(*reason);
  return event;
}

// ---------- per-event validation (the quarantine taxonomy) ----------

TEST(EventParse, AcceptsBatchFormatLine) {
  const auto event = must_parse("42\t2010-10-19T23:55:27Z\t30.25\t-97.75\t88");
  EXPECT_EQ(event.user, 42);
  EXPECT_EQ(event.poi, 88);
  EXPECT_FALSE(event.has_explicit_id);
  EXPECT_NEAR(event.location.lat, 30.25, 1e-12);
  EXPECT_NEAR(event.location.lng, -97.75, 1e-12);
}

TEST(EventParse, AcceptsExplicitEventIdColumn) {
  const auto event =
      must_parse("42\t2010-10-19T23:55:27Z\t30.25\t-97.75\t88\t7001");
  EXPECT_TRUE(event.has_explicit_id);
  EXPECT_EQ(event.event_id, 7001u);
}

TEST(EventParse, RejectsEveryPoisonShape) {
  stream::RawEvent event;
  const auto reject = [&](const std::string& line) {
    const auto reason = stream::parse_event_line(line, event);
    EXPECT_TRUE(reason.has_value()) << "accepted poison line: " << line;
    return reason.value_or(stream::RejectReason::kShortLine);
  };
  EXPECT_EQ(reject("42\t2010-10-19T23:55:27Z\t30.25"),
            stream::RejectReason::kShortLine);
  EXPECT_EQ(reject("42\tnot-a-time\t30.25\t-97.75\t88"),
            stream::RejectReason::kBadTimestamp);
  // Impossible calendar date, not just bad syntax.
  EXPECT_EQ(reject("42\t2010-02-30T10:00:00Z\t30.25\t-97.75\t88"),
            stream::RejectReason::kBadTimestamp);
  EXPECT_EQ(reject("42\t2010-10-19T23:55:27Z\t95.0\t-97.75\t88"),
            stream::RejectReason::kOutOfRangeCoord);
  EXPECT_EQ(reject("42\t2010-10-19T23:55:27Z\t30.25\t181.0\t88"),
            stream::RejectReason::kOutOfRangeCoord);
  EXPECT_EQ(reject("42\t2010-10-19T23:55:27Z\t30.25\t-97.75\tpoi"),
            stream::RejectReason::kBadNumber);
  EXPECT_EQ(reject("user\t2010-10-19T23:55:27Z\t30.25\t-97.75\t88"),
            stream::RejectReason::kBadNumber);
}

TEST(EventParse, EveryRejectReasonMapsToParseError) {
  for (std::size_t i = 0; i < stream::kRejectReasonCount; ++i) {
    const auto reason = static_cast<stream::RejectReason>(i);
    EXPECT_EQ(stream::reject_error_code(reason), ErrorCode::kParse)
        << stream::reject_reason_name(reason);
    EXPECT_NE(stream::reject_reason_name(reason), nullptr);
  }
}

// A rejected event must never mutate engine state — digest-pinned.
TEST(EventParse, RejectedEventsNeverMutateEngineState) {
  stream::StreamEngine engine{stream::EngineConfig{}};
  ASSERT_FALSE(engine
                   .ingest(must_parse(
                       "1\t2010-10-19T10:00:00Z\t30.25\t-97.75\t5\t100"))
                   .has_value());
  ASSERT_FALSE(engine
                   .ingest(must_parse(
                       "2\t2010-10-19T10:30:00Z\t30.25\t-97.75\t5\t101"))
                   .has_value());
  const std::uint64_t digest = engine.state_digest();

  // Malformed lines never even reach ingest (parse rejects them)...
  stream::RawEvent scratch;
  EXPECT_TRUE(stream::parse_event_line("1\tbad-time\t30.25\t-97.75\t5",
                                       scratch)
                  .has_value());
  // ...and ingestion-state rejects (duplicate explicit id) mutate nothing.
  const auto dup =
      engine.ingest(must_parse("3\t2010-10-19T11:00:00Z\t30.25\t-97.75\t5\t100"));
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(*dup, stream::RejectReason::kDuplicateEventId);
  EXPECT_EQ(engine.state_digest(), digest);
  EXPECT_EQ(engine.accepted_count(), 2u);
}

TEST(Engine, LatenessBudgetQuarantinesStaleEvents) {
  stream::EngineConfig cfg;
  cfg.lateness_budget_sec = 3600;
  stream::StreamEngine engine{cfg};
  ASSERT_FALSE(
      engine.ingest(must_parse("1\t2010-10-19T12:00:00Z\t30.0\t-97.0\t5"))
          .has_value());
  const std::uint64_t digest = engine.state_digest();
  const auto stale =
      engine.ingest(must_parse("2\t2010-10-19T09:00:00Z\t30.0\t-97.0\t5"));
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(*stale, stream::RejectReason::kStaleTimestamp);
  EXPECT_EQ(engine.state_digest(), digest);
}

// ---------- quarantine census ----------

TEST(Quarantine, CountsReasonsAndBoundsSamples) {
  stream::PoisonQuarantine quarantine(2);
  quarantine.add(0, stream::RejectReason::kBadTimestamp, "a");
  quarantine.add(1, stream::RejectReason::kBadTimestamp, "b");
  quarantine.add(2, stream::RejectReason::kShortLine, "c");
  EXPECT_EQ(quarantine.total(), 3u);
  EXPECT_EQ(quarantine.count(stream::RejectReason::kBadTimestamp), 2u);
  EXPECT_EQ(quarantine.samples().size(), 2u);  // bounded
  EXPECT_NE(quarantine.summary().find("bad_timestamp"), std::string::npos);

  stream::PoisonQuarantine restored(2);
  restored.restore(quarantine.counts());
  EXPECT_EQ(restored.total(), 3u);
  EXPECT_EQ(restored.count(stream::RejectReason::kShortLine), 1u);
  EXPECT_TRUE(restored.samples().empty());  // samples are not durable
}

// ---------- backpressure ring ----------

TEST(Ring, FifoWithBoundedCapacity) {
  stream::EventRing ring(3);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.free_space(), 3u);
  EXPECT_TRUE(ring.push({0, "a", {}}));
  EXPECT_TRUE(ring.push({1, "b", {}}));
  EXPECT_TRUE(ring.push({2, "c", {}}));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push({3, "d", {}}));  // full: caller blocks or sheds

  const auto first = ring.pop();
  EXPECT_EQ(first.ordinal, 0u);
  EXPECT_EQ(first.line, "a");
  EXPECT_TRUE(ring.push({3, "d", {}}));  // slot freed, wraps around
  EXPECT_EQ(ring.pop().line, "b");
  EXPECT_EQ(ring.pop().line, "c");
  EXPECT_EQ(ring.pop().ordinal, 3u);
  EXPECT_TRUE(ring.empty());
}

// ---------- journal durability ----------

TEST(Journal, RoundTripsEveryDisposition) {
  const std::string dir = temp_dir("journal_roundtrip");
  const std::string path = dir + "/journal.fsj";
  {
    stream::JournalWriter writer(path);
    auto event = must_parse("1\t2010-10-19T10:00:00Z\t30.25\t-97.75\t5\t42");
    event.seq = 0;
    writer.append_accepted(0, event);
    writer.append_quarantined(1, stream::RejectReason::kBadTimestamp,
                              "1\tbad\t0\t0\t0");
    writer.append_shed(2, "1\t2010-10-19T10:01:00Z\t30.0\t-97.0\t6");
  }
  const auto recovered = stream::recover_journal(path);
  EXPECT_FALSE(recovered.missing);
  EXPECT_FALSE(recovered.truncated_tail);
  ASSERT_EQ(recovered.records.size(), 3u);
  EXPECT_EQ(recovered.records[0].type, stream::FrameType::kAccepted);
  EXPECT_EQ(recovered.records[0].source_index, 0u);
  EXPECT_EQ(recovered.records[0].event.user, 1);
  EXPECT_TRUE(recovered.records[0].event.has_explicit_id);
  EXPECT_EQ(recovered.records[0].event.event_id, 42u);
  EXPECT_EQ(recovered.records[1].type, stream::FrameType::kQuarantined);
  EXPECT_EQ(recovered.records[1].reason,
            stream::RejectReason::kBadTimestamp);
  EXPECT_EQ(recovered.records[1].line, "1\tbad\t0\t0\t0");
  EXPECT_EQ(recovered.records[2].type, stream::FrameType::kShed);
  EXPECT_EQ(recovered.records[2].source_index, 2u);
}

TEST(Journal, TornTailIsDetectedAndTruncatable) {
  const std::string dir = temp_dir("journal_torn");
  const std::string path = dir + "/journal.fsj";
  {
    stream::JournalWriter writer(path);
    writer.append_quarantined(0, stream::RejectReason::kShortLine, "x");
    writer.append_quarantined(1, stream::RejectReason::kShortLine, "y");
  }
  // Tear the last frame mid-payload, like a crash mid-write.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 3);

  auto recovered = stream::recover_journal(path);
  EXPECT_TRUE(recovered.truncated_tail);
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0].line, "x");

  stream::truncate_journal(path, recovered.valid_bytes);
  {
    stream::JournalWriter writer(path);  // appends after the valid prefix
    writer.append_quarantined(1, stream::RejectReason::kShortLine, "y2");
  }
  recovered = stream::recover_journal(path);
  EXPECT_FALSE(recovered.truncated_tail);
  ASSERT_EQ(recovered.records.size(), 2u);
  EXPECT_EQ(recovered.records[1].line, "y2");
}

TEST(Journal, TornWriteFailpointThrowsAndLeavesRecoverablePrefix) {
  const std::string dir = temp_dir("journal_failpoint");
  const std::string path = dir + "/journal.fsj";
  fp::clear();
  fp::Config cfg;
  cfg.action = fp::Action::kTruncate;
  cfg.skip = 1;
  cfg.limit = 1;
  fp::activate("stream.journal.torn_write", cfg);

  stream::JournalWriter writer(path);
  writer.append_quarantined(0, stream::RejectReason::kShortLine, "keep");
  EXPECT_THROW(
      writer.append_quarantined(1, stream::RejectReason::kShortLine, "torn"),
      IoError);
  fp::clear();

  const auto recovered = stream::recover_journal(path);
  EXPECT_TRUE(recovered.truncated_tail);
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0].line, "keep");
}

TEST(Snapshot, RoundTripsAndRefusesForeignFingerprint) {
  const std::string dir = temp_dir("snapshot");
  const std::string path = dir + "/snapshot.fss";
  stream::Snapshot snapshot;
  snapshot.config_fingerprint = 0xfeedULL;
  snapshot.consumed_lines = 17;
  snapshot.shed_total = 2;
  snapshot.quarantine_counts[1] = 3;
  auto event = must_parse("9\t2010-10-19T10:00:00Z\t30.0\t-97.0\t4");
  event.seq = 0;
  snapshot.events.push_back(event);
  stream::save_snapshot(path, snapshot);

  const auto loaded = stream::load_snapshot(path, 0xfeedULL);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->consumed_lines, 17u);
  EXPECT_EQ(loaded->shed_total, 2u);
  EXPECT_EQ(loaded->quarantine_counts[1], 3u);
  ASSERT_EQ(loaded->events.size(), 1u);
  EXPECT_EQ(loaded->events[0].user, 9);
  EXPECT_EQ(loaded->events[0].line, event.line);

  // A different engine config must refuse the snapshot...
  EXPECT_FALSE(stream::load_snapshot(path, 0xbeefULL).has_value());
  // ...and a corrupt file falls back to journal-only recovery.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 1);
  EXPECT_FALSE(stream::load_snapshot(path, 0xfeedULL).has_value());
  EXPECT_FALSE(stream::load_snapshot(dir + "/absent.fss", 1).has_value());
}

// ---------- sources ----------

TEST(Source, FileTailHoldsBackTornLines) {
  const std::string dir = temp_dir("tail");
  const std::string path = dir + "/tail.txt";
  write_file(path, "line-one\nline-tw");  // second line torn mid-write
  stream::FileTailSource tail(path);
  std::vector<stream::SourceItem> out;
  EXPECT_EQ(tail.poll(8, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, "line-one");
  EXPECT_FALSE(out[0].poison.has_value());

  std::ofstream(path, std::ios::binary | std::ios::app) << "o\nline-three\n";
  out.clear();
  EXPECT_EQ(tail.poll(8, out), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].line, "line-two");
  EXPECT_EQ(out[1].line, "line-three");
  EXPECT_FALSE(tail.exhausted());  // a tail never declares the stream done
}

TEST(Source, OpenFailureIsRetriedThenFatal) {
  const std::string dir = temp_dir("open_fail");
  const std::string path = dir + "/replay.txt";
  write_file(path, "a\nb\n");

  fp::clear();
  fp::Config cfg;
  cfg.action = fp::Action::kError;
  cfg.limit = 1;
  fp::activate("stream.source.open_fail", cfg);
  stream::ReplaySource replay(path);
  std::vector<stream::SourceItem> out;
  EXPECT_EQ(replay.poll(8, out), 2u);  // transient failure absorbed
  EXPECT_EQ(replay.open_failures(), 1u);
  EXPECT_TRUE(replay.exhausted());
  fp::clear();

  fp::Config always;
  always.action = fp::Action::kError;
  fp::activate("stream.source.open_fail", always);
  stream::ReplaySource doomed(path);
  out.clear();
  EXPECT_THROW(doomed.poll(8, out), IoError);  // retry budget exhausted
  fp::clear();
}

// ---------- daemon: kill-at-any-point recovery ----------

struct StreamWorld {
  std::string dir;
  std::string checkins_path;
  std::string edges_path;
  std::string stream_path;  // checkins + trailing poison block
};

StreamWorld make_stream_world(const std::string& name) {
  StreamWorld world;
  world.dir = temp_dir(name);
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 30;
  cfg.poi_count = 90;
  cfg.city_count = 2;
  cfg.weeks = 2;
  cfg.seed = 5;
  const auto generated = data::generate_world(cfg);
  world.checkins_path = world.dir + "/checkins.txt";
  world.edges_path = world.dir + "/edges.txt";
  data::save_checkins_snap(generated.dataset, world.checkins_path,
                           world.edges_path);

  world.stream_path = world.dir + "/stream.txt";
  std::ifstream in(world.checkins_path, std::ios::binary);
  std::ofstream out(world.stream_path, std::ios::binary);
  out << in.rdbuf();
  out << "7\tmalformed\n";
  out << "7\t2010-13-40T99:99:99Z\t10.0\t20.0\t3\n";
  out << "7\t2010-10-19T23:55:27Z\t95.0\t20.0\t3\n";
  return world;
}

stream::ServeConfig serve_config(std::string journal_dir) {
  stream::ServeConfig cfg;
  cfg.ring_capacity = 32;
  cfg.events_per_tick = 8;
  cfg.tick_budget_ms = 0;
  cfg.snapshot_every = 3;
  cfg.journal_dir = std::move(journal_dir);
  return cfg;
}

TEST(Daemon, KillAndResumeConvergesToUninterruptedDigest) {
  const StreamWorld world = make_stream_world("daemon_kill");
  fp::clear();

  // Uninterrupted baseline (no durability needed for it).
  stream::ServeConfig baseline_cfg = serve_config("");
  stream::ServeDaemon baseline(
      baseline_cfg, std::make_unique<stream::ReplaySource>(world.stream_path));
  const auto baseline_report = baseline.run();
  ASSERT_TRUE(baseline_report.exhausted);
  ASSERT_EQ(baseline_report.quarantined, 3u);
  ASSERT_EQ(baseline_report.shed, 0u);
  ASSERT_GT(baseline_report.accepted, 0u);

  // Kill mid-stream, twice, resuming from durable state each time with a
  // brand-new daemon + source.
  const std::string durable_dir = world.dir + "/journal";
  std::filesystem::create_directories(durable_dir);
  fp::Config kill;
  kill.action = fp::Action::kError;
  kill.skip = 4;
  kill.limit = 2;
  fp::activate("stream.tick.abort", kill);

  int kills = 0;
  stream::ServeReport report;
  std::array<std::uint64_t, stream::kRejectReasonCount> counts{};
  bool used_snapshot = false;
  while (true) {
    stream::ServeDaemon daemon(
        serve_config(durable_dir),
        std::make_unique<stream::ReplaySource>(world.stream_path));
    used_snapshot = daemon.recover().snapshot_used || used_snapshot;
    try {
      report = daemon.run();
      counts = daemon.quarantine().counts();
      break;
    } catch (const fp::InjectedKill&) {
      ++kills;
      ASSERT_LE(kills, 4);
    }
  }
  fp::clear();

  EXPECT_EQ(kills, 2);
  EXPECT_TRUE(used_snapshot);  // at least one resume came through a snapshot
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.final_digest, baseline_report.final_digest);
  EXPECT_EQ(report.quarantined, baseline_report.quarantined);
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i], baseline.quarantine().counts()[i]) << i;
  EXPECT_EQ(report.shed, 0u);
}

TEST(Daemon, ShedModeAccountsEveryDroppedLine) {
  const StreamWorld world = make_stream_world("daemon_shed");
  fp::clear();
  stream::ServeConfig cfg = serve_config("");
  cfg.ring_capacity = 4;
  cfg.events_per_tick = 2;
  cfg.backpressure = stream::Backpressure::kShed;
  // Poll far ahead of what we consume: the overflow must be shed, counted,
  // and the total disposition census must still cover every source line.
  cfg.events_per_tick = 2;
  stream::ServeDaemon daemon(
      cfg, std::make_unique<stream::ReplaySource>(world.stream_path));
  const auto report = daemon.run();
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.accepted + report.quarantined + report.shed,
            report.consumed_lines);
}

TEST(Daemon, BlockModeNeverSheds) {
  const StreamWorld world = make_stream_world("daemon_block");
  fp::clear();
  stream::ServeConfig cfg = serve_config("");
  cfg.ring_capacity = 4;
  cfg.events_per_tick = 8;  // wants more than the ring holds: must block
  stream::ServeDaemon daemon(
      cfg, std::make_unique<stream::ReplaySource>(world.stream_path));
  const auto report = daemon.run();
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.accepted + report.quarantined, report.consumed_lines);
}

/// A bursty in-memory source for the shed-accounting property: random-size
/// bursts (including empty polls) of mostly-valid lines with an occasional
/// parse-poison line, up to a fixed offered total.
class BurstSource : public stream::EventSource {
 public:
  BurstSource(std::uint64_t seed, std::size_t total)
      : rng_(seed), remaining_(total) {}

  std::size_t poll(std::size_t max_items,
                   std::vector<stream::SourceItem>& out) override {
    if (remaining_ == 0 || max_items == 0) return 0;
    if (rng_.chance(0.25)) return 0;  // idle poll: the stream is bursty
    std::size_t want = 1 + static_cast<std::size_t>(
                               rng_.next_u64(static_cast<std::uint64_t>(
                                   std::min(max_items, remaining_))));
    want = std::min({want, max_items, remaining_});
    for (std::size_t i = 0; i < want; ++i) {
      const std::uint64_t n = emitted_++;
      std::string line;
      if (n % 9 == 8) {
        // Parse poison (|lat| > 90): must land in the quarantine, and the
        // quarantine slot must still count in the disposition census.
        line = std::to_string(n % 7) + "\t2010-10-19T23:55:27Z\t95.0\t20.0\t3";
      } else {
        line = std::to_string(n % 7) + "\t2010-10-19T23:55:27Z\t30.2\t-97.7\t" +
               std::to_string(n % 13);
      }
      out.push_back(stream::SourceItem{std::move(line), std::nullopt});
    }
    remaining_ -= want;
    return want;
  }
  bool exhausted() const override { return remaining_ == 0; }
  void skip_lines(std::uint64_t) override {}

 private:
  util::Rng rng_;
  std::size_t remaining_;
  std::uint64_t emitted_ = 0;
};

TEST(Property, ShedAccountingHoldsAcrossRandomRingsAndBursts) {
  // Every offered line must end as exactly one of accepted, quarantined,
  // or shed — across random ring sizes (forcing wraparound), poll budgets
  // larger than the ring (forcing sheds), and bursty arrivals. Fixed meta
  // seed: the trial stream is deterministic, so at least one trial is
  // known to shed and every failure reproduces.
  util::Rng meta(0xB00C5EEDULL);
  std::uint64_t total_shed = 0;
  for (int trial = 0; trial < 24; ++trial) {
    fp::clear();
    stream::ServeConfig cfg;
    cfg.ring_capacity = 1 + static_cast<std::size_t>(meta.next_u64(12));
    cfg.events_per_tick = 1 + static_cast<std::size_t>(meta.next_u64(24));
    cfg.tick_budget_ms = 0;
    cfg.backpressure = stream::Backpressure::kShed;
    const std::size_t offered =
        50 + static_cast<std::size_t>(meta.next_u64(250));
    stream::ServeDaemon daemon(
        cfg, std::make_unique<BurstSource>(meta.next_u64(1u << 30), offered));
    const auto report = daemon.run();
    ASSERT_TRUE(report.exhausted) << "trial " << trial;
    EXPECT_EQ(report.consumed_lines, offered) << "trial " << trial;
    EXPECT_EQ(report.accepted + report.quarantined + report.shed, offered)
        << "trial " << trial << " ring=" << cfg.ring_capacity
        << " events_per_tick=" << cfg.events_per_tick;
    EXPECT_GT(report.quarantined, 0u) << "trial " << trial;
    total_shed += report.shed;
  }
  EXPECT_GT(total_shed, 0u) << "no trial ever shed: the property is vacuous";
}

// ---------- convergence to batch ----------

TEST(Convergence, StreamDatasetMatchesBatchLoader) {
  const StreamWorld world = make_stream_world("convergence");
  fp::clear();
  stream::ServeDaemon daemon(
      serve_config(""),
      std::make_unique<stream::ReplaySource>(world.stream_path));
  ASSERT_TRUE(daemon.run().exhausted);

  const auto raw_edges = data::read_edges_file(world.edges_path);
  std::vector<long long> stream_users;
  const data::Dataset stream_ds =
      daemon.engine().to_dataset(raw_edges, {}, nullptr, &stream_users);
  const data::Dataset batch_ds =
      data::load_checkins_snap(world.checkins_path, world.edges_path);

  ASSERT_EQ(stream_ds.user_count(), batch_ds.user_count());
  ASSERT_EQ(stream_ds.poi_count(), batch_ds.poi_count());
  ASSERT_EQ(stream_ds.checkin_count(), batch_ds.checkin_count());
  EXPECT_EQ(stream_users.size(), stream_ds.user_count());
  for (std::size_t i = 0; i < stream_ds.checkin_count(); ++i) {
    const auto& a = stream_ds.checkins()[i];
    const auto& b = batch_ds.checkins()[i];
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.poi, b.poi);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.location.lat, b.location.lat);
    EXPECT_EQ(a.location.lng, b.location.lng);
  }
  EXPECT_EQ(stream_ds.friendships().edge_count(),
            batch_ds.friendships().edge_count());
}

// The purity argument behind convergence: any tick schedule reaches the
// same fixed point once the frontier drains, and the digest pins it.
TEST(Convergence, TickScheduleDoesNotChangeTheFixedPoint) {
  const StreamWorld world = make_stream_world("schedules");
  fp::clear();

  stream::ServeConfig coarse = serve_config("");
  coarse.events_per_tick = 64;
  stream::ServeDaemon a(
      coarse, std::make_unique<stream::ReplaySource>(world.stream_path));
  stream::ServeConfig fine = serve_config("");
  fine.events_per_tick = 3;
  fine.ring_capacity = 8;
  stream::ServeDaemon b(
      fine, std::make_unique<stream::ReplaySource>(world.stream_path));
  const auto report_a = a.run();
  const auto report_b = b.run();
  ASSERT_TRUE(report_a.exhausted);
  ASSERT_TRUE(report_b.exhausted);
  EXPECT_NE(report_a.ticks, report_b.ticks);  // genuinely different schedules
  EXPECT_EQ(report_a.final_digest, report_b.final_digest);
}

// ---------- stream failpoints in the registry ----------

TEST(Failpoints, StreamEntriesRegisteredAndListSorted) {
  const auto& known = fp::known_failpoints();
  bool torn = false, open_fail = false, abort_fp = false;
  std::size_t net_entries = 0;
  for (std::size_t i = 0; i < known.size(); ++i) {
    const std::string_view name = known[i].name;
    if (i > 0) {
      EXPECT_LT(std::string_view(known[i - 1].name), name);  // sorted, unique
    }
    if (name == "stream.journal.torn_write") torn = true;
    if (name == "stream.source.open_fail") open_fail = true;
    if (name == "stream.tick.abort") abort_fp = true;
    if (name.substr(0, 4) == "net.") ++net_entries;
  }
  EXPECT_TRUE(torn);
  EXPECT_TRUE(open_fail);
  EXPECT_TRUE(abort_fp);
  // The network fault surface: accept failure, connection drop, sender
  // stall, torn client send, torn server write.
  EXPECT_EQ(net_entries, 5u);
}

// ---------- FeatureCache delta invalidation ----------

TEST(FeatureCacheDelta, EvictsExactlyTouchedUsersAndReusesSlots) {
  block::FeatureCache cache;
  cache.prepare(11, 4, 2, nullptr);
  cache.insert_joc({1, 2})[0] = 12.0;
  cache.insert_joc({2, 3})[0] = 23.0;
  cache.insert_joc({3, 4})[0] = 34.0;
  const std::size_t bytes_before = cache.bytes();

  EXPECT_EQ(cache.invalidate_joc_touching({2}), 2u);  // {1,2} and {2,3}
  EXPECT_EQ(cache.find_joc({1, 2}), nullptr);
  EXPECT_EQ(cache.find_joc({2, 3}), nullptr);
  ASSERT_NE(cache.find_joc({3, 4}), nullptr);
  EXPECT_EQ(cache.find_joc({3, 4})[0], 34.0);
  EXPECT_EQ(cache.stats().joc_rows, 1u);

  // Freed slots are reused: re-inserting does not grow the arena.
  cache.insert_joc({1, 2});
  cache.insert_joc({2, 3});
  EXPECT_EQ(cache.bytes(), bytes_before);
  EXPECT_EQ(cache.stats().joc_rows, 3u);
  EXPECT_EQ(cache.invalidate_joc_touching({99}), 0u);  // untouched user
}

TEST(FeatureCacheDelta, PresenceDropsWholesaleJocSurvives) {
  block::FeatureCache cache;
  cache.prepare(11, 4, 2, nullptr);
  cache.insert_joc({1, 2})[0] = 1.0;
  cache.insert_presence({1, 2})[0] = 2.0;
  cache.insert_presence({2, 3})[0] = 3.0;
  EXPECT_EQ(cache.invalidate_presence_all(), 2u);
  EXPECT_EQ(cache.find_presence({1, 2}), nullptr);
  EXPECT_EQ(cache.stats().presence_rows, 0u);
  ASSERT_NE(cache.find_joc({1, 2}), nullptr);  // untouched grain
}

TEST(FeatureCacheDelta, CarryLetsJocSurviveASignatureChangeOnce) {
  block::FeatureCache cache;
  cache.prepare(11, 4, 2, nullptr);
  cache.insert_joc({1, 2})[0] = 7.0;
  cache.insert_presence({1, 2})[0] = 8.0;

  cache.carry_joc_across_next_prepare();
  cache.prepare(12, 4, 2, nullptr);  // new signature, same widths
  ASSERT_NE(cache.find_joc({1, 2}), nullptr);  // carried
  EXPECT_EQ(cache.find_joc({1, 2})[0], 7.0);
  EXPECT_EQ(cache.find_presence({1, 2}), nullptr);  // presence never carried

  // One-shot: the next signature change drops rows as usual.
  cache.insert_joc({3, 4})[0] = 9.0;
  cache.prepare(13, 4, 2, nullptr);
  EXPECT_EQ(cache.find_joc({1, 2}), nullptr);
  EXPECT_EQ(cache.find_joc({3, 4}), nullptr);

  // A carried prepare with a *different* JOC width must still reset —
  // width mismatch always wins over the carry flag.
  cache.insert_joc({5, 6});
  cache.carry_joc_across_next_prepare();
  cache.prepare(14, 8, 2, nullptr);
  EXPECT_EQ(cache.find_joc({5, 6}), nullptr);
  EXPECT_EQ(cache.joc_width(), 8u);
}

}  // namespace
