#include <gtest/gtest.h>

#include <cmath>

#include "core/joc.h"
#include "core/pipeline.h"
#include "core/presence.h"
#include "core/social.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "ml/metrics.h"

namespace fs::core {
namespace {

// A fixed 2-user world on a 1-cell spatial division for exact JOC checks.
struct FixtureWorld {
  data::Dataset dataset;
  geo::UniformGridDivision division;
  geo::TimeSlotting slots;

  FixtureWorld()
      : dataset(make_dataset()),
        division(dataset.poi_coordinates(), 1, 2),  // 2 spatial cells
        slots(0, 200, 100) {}                       // 2 time slots

  static data::Dataset make_dataset() {
    // POIs: 0 and 1 in the west cell (lng < 0.5), 2 in the east cell.
    std::vector<data::Poi> pois{
        {{0.5, 0.1}, 0}, {{0.5, 0.2}, 1}, {{0.5, 0.9}, 2}};
    // User 0: POI 0 at t=10 (slot 0), POI 0 at t=150 (slot 1),
    //         POI 2 at t=20 (slot 0).
    // User 1: POI 0 at t=30 (slot 0), POI 1 at t=40 (slot 0).
    std::vector<data::CheckIn> checkins{
        {0, 0, 10, {0.5, 0.1}},
        {0, 0, 150, {0.5, 0.1}},
        {0, 2, 20, {0.5, 0.9}},
        {1, 0, 30, {0.5, 0.1}},
        {1, 1, 40, {0.5, 0.2}},
        // Anchor check-ins pinning the observation window to [10, 200):
        {2, 2, 199, {0.5, 0.9}},
    };
    graph::Graph g(3);
    g.add_edge(0, 1);
    return data::Dataset::build(3, std::move(pois), std::move(checkins),
                                std::move(g));
  }
};

// ---------- OccupancyIndex / JOC ----------

TEST(Joc, OccupancyIndexAggregatesCounts) {
  const FixtureWorld w;
  const geo::UniformGridDivisionView view(w.division);
  const OccupancyIndex index(w.dataset, view, w.slots);
  EXPECT_EQ(index.grid_count(), 2u);
  EXPECT_EQ(index.slot_count(), 2u);
  EXPECT_EQ(index.joc_dim(), 12u);
  // User 0: 3 check-ins, one POI repeated at different slots.
  const auto& entries = index.user_entries(0);
  EXPECT_EQ(entries.size(), 3u);
}

TEST(Joc, ValuesMatchHandComputation) {
  const FixtureWorld w;
  const geo::UniformGridDivisionView view(w.division);
  const OccupancyIndex index(w.dataset, view, w.slots);
  JocOptions options;
  options.log_scale = false;
  std::vector<double> joc(index.joc_dim());
  build_joc(index, 0, 1, joc.data(), options);
  // Layout: [n_a | n_b | n_ab], each 4 cells (cellslot = grid*2 + slot).
  // West cell (grid 0): user 0 has 1 check-in in slot 0 and 1 in slot 1;
  // user 1 has 2 in slot 0. Both visited POI 0 in (west, slot 0) -> n_ab=1.
  const double* na = joc.data();
  const double* nb = joc.data() + 4;
  const double* nab = joc.data() + 8;
  EXPECT_DOUBLE_EQ(na[0], 1.0);   // west slot0
  EXPECT_DOUBLE_EQ(na[1], 1.0);   // west slot1
  EXPECT_DOUBLE_EQ(na[2], 1.0);   // east slot0 (POI 2)
  EXPECT_DOUBLE_EQ(na[3], 0.0);
  EXPECT_DOUBLE_EQ(nb[0], 2.0);
  EXPECT_DOUBLE_EQ(nb[1], 0.0);
  EXPECT_DOUBLE_EQ(nab[0], 1.0);  // shared POI 0 in west slot0
  EXPECT_DOUBLE_EQ(nab[1], 0.0);
  EXPECT_DOUBLE_EQ(nab[2], 0.0);
}

TEST(Joc, SymmetricInAB) {
  const FixtureWorld w;
  const geo::UniformGridDivisionView view(w.division);
  const OccupancyIndex index(w.dataset, view, w.slots);
  JocOptions options;
  options.log_scale = false;
  std::vector<double> ab(index.joc_dim()), ba(index.joc_dim());
  build_joc(index, 0, 1, ab.data(), options);
  build_joc(index, 1, 0, ba.data(), options);
  // n_a and n_b channels swap; n_ab is identical.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ab[i], ba[4 + i]);
    EXPECT_DOUBLE_EQ(ab[4 + i], ba[i]);
    EXPECT_DOUBLE_EQ(ab[8 + i], ba[8 + i]);
  }
}

TEST(Joc, LogScaleIsMonotone) {
  const FixtureWorld w;
  const geo::UniformGridDivisionView view(w.division);
  const OccupancyIndex index(w.dataset, view, w.slots);
  std::vector<double> raw(index.joc_dim()), logged(index.joc_dim());
  JocOptions opt_raw;
  opt_raw.log_scale = false;
  build_joc(index, 0, 1, raw.data(), opt_raw);
  build_joc(index, 0, 1, logged.data());
  for (std::size_t i = 0; i < raw.size(); ++i)
    EXPECT_NEAR(logged[i], std::log1p(raw[i]), 1e-12);
}

TEST(Joc, MatrixBuilderMatchesSingle) {
  const FixtureWorld w;
  const geo::UniformGridDivisionView view(w.division);
  const OccupancyIndex index(w.dataset, view, w.slots);
  const std::vector<data::UserPair> pairs{{0, 1}, {0, 2}};
  const nn::Matrix m = build_joc_matrix(index, pairs);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), index.joc_dim());
  std::vector<double> single(index.joc_dim());
  build_joc(index, 0, 1, single.data());
  for (std::size_t c = 0; c < single.size(); ++c)
    EXPECT_DOUBLE_EQ(m(0, c), single[c]);
}

// ---------- encoder dims ----------

TEST(Presence, EncoderDimsHalve) {
  PresenceModelConfig cfg;
  cfg.feature_dim = 64;
  cfg.max_hidden_layers = 2;
  cfg.max_hidden_width = 10000;
  const auto dims = make_encoder_dims(1000, cfg);
  EXPECT_EQ(dims, (std::vector<std::size_t>{1000, 500, 250, 64}));
}

TEST(Presence, EncoderDimsSkipNarrowLayers) {
  PresenceModelConfig cfg;
  cfg.feature_dim = 64;
  cfg.max_hidden_layers = 3;
  const auto dims = make_encoder_dims(200, cfg);
  // 200/2 = 100 <= 128, so no hidden layer survives.
  EXPECT_EQ(dims, (std::vector<std::size_t>{200, 64}));
}

TEST(Presence, EncoderDimsClampWidth) {
  PresenceModelConfig cfg;
  cfg.feature_dim = 64;
  cfg.max_hidden_width = 320;
  const auto dims = make_encoder_dims(2000, cfg);
  EXPECT_EQ(dims, (std::vector<std::size_t>{2000, 320, 64}));
}

TEST(Presence, EncoderDimsRejectTinyInput) {
  PresenceModelConfig cfg;
  cfg.feature_dim = 64;
  EXPECT_THROW(make_encoder_dims(64, cfg), std::invalid_argument);
}

// ---------- PresenceModel ----------

TEST(Presence, TrainsAndPredictsOnSyntheticJocs) {
  // JOC-like inputs: positives have mass in the shared channel.
  util::Rng rng(7);
  const std::size_t dim = 48;
  nn::Matrix x(120, dim);
  std::vector<int> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < dim; ++c) {
      double v = rng.uniform() < 0.1 ? rng.uniform(0.0, 2.0) : 0.0;
      if (y[i] && c >= 2 * dim / 3) v += rng.uniform(0.5, 1.5);
      x(i, c) = std::log1p(v);
    }
  }
  PresenceModelConfig cfg;
  cfg.feature_dim = 8;
  cfg.epochs = 30;
  PresenceModel model(cfg);
  model.train(x, y);
  EXPECT_TRUE(model.trained());
  const nn::Matrix code = model.encode(x);
  EXPECT_EQ(code.cols(), 8u);
  const auto pred = model.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) correct += pred[i] == y[i];
  EXPECT_GT(correct, 100u);
}

TEST(Presence, PredictBeforeTrainThrows) {
  PresenceModel model(PresenceModelConfig{});
  EXPECT_THROW(model.encode(nn::Matrix(1, 10)), std::logic_error);
  EXPECT_THROW(model.predict_proba_encoded(nn::Matrix(1, 10)),
               std::logic_error);
}

// ---------- social proximity features ----------

TEST(Social, SumsEdgeFeaturesByPathLength) {
  // Graph: 0-2-1 (one 2-path) and 0-3-4-1 (one 3-path).
  graph::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 1);
  SocialFeatureConfig cfg;
  cfg.k = 3;
  cfg.feature_dim = 2;
  // Every edge has feature [1, 10].
  EdgeFeatureFn constant = [](data::UserId, data::UserId,
                              std::vector<double>& out) {
    out = {1.0, 10.0};
    return true;
  };
  const auto s = social_proximity_feature(g, 0, 1, cfg, constant);
  ASSERT_EQ(s.size(), 4u);  // (k-1) * d
  // Length-2 slot: one path with 2 edges -> [2, 20].
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 20.0);
  // Length-3 slot: one path with 3 edges -> [3, 30].
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s[3], 30.0);
}

TEST(Social, MissingEdgeFeaturesContributeNothing) {
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  SocialFeatureConfig cfg;
  cfg.k = 3;
  cfg.feature_dim = 1;
  EdgeFeatureFn only02 = [](data::UserId a, data::UserId b,
                            std::vector<double>& out) {
    if (data::make_pair_ordered(a, b) == data::UserPair{0, 2}) {
      out = {5.0};
      return true;
    }
    return false;
  };
  const auto s = social_proximity_feature(g, 0, 1, cfg, only02);
  EXPECT_DOUBLE_EQ(s[0], 5.0);  // only edge (0,2) contributes
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(Social, WrongFeatureWidthThrows) {
  graph::Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  SocialFeatureConfig cfg;
  cfg.k = 3;
  cfg.feature_dim = 2;
  EdgeFeatureFn bad = [](data::UserId, data::UserId,
                         std::vector<double>& out) {
    out = {1.0};  // width 1, expected 2
    return true;
  };
  EXPECT_THROW(social_proximity_feature(g, 0, 1, cfg, bad),
               std::logic_error);
}

TEST(Social, EmptySubgraphGivesZeroVector) {
  graph::Graph g(4);  // no path between 0 and 1
  SocialFeatureConfig cfg;
  cfg.k = 3;
  cfg.feature_dim = 3;
  EdgeFeatureFn constant = [](data::UserId, data::UserId,
                              std::vector<double>& out) {
    out = {1.0, 1.0, 1.0};
    return true;
  };
  const auto s = social_proximity_feature(g, 0, 1, cfg, constant);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Social, HeuristicFeatureHasSameWidth) {
  graph::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(2, 1);
  SocialFeatureConfig cfg;
  cfg.k = 3;
  cfg.feature_dim = 16;
  const auto s = heuristic_social_feature(g, 0, 1, cfg);
  EXPECT_EQ(s.size(), 32u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);  // common neighbors
}

// ---------- pipeline ----------

data::SyntheticWorldConfig pipeline_world_config() {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 110;
  cfg.poi_count = 280;
  cfg.city_count = 3;
  cfg.weeks = 6;
  cfg.seed = 31;
  return cfg;
}

FriendSeekerConfig fast_seeker_config() {
  FriendSeekerConfig cfg;
  cfg.sigma = 60;
  cfg.presence.feature_dim = 16;
  cfg.presence.epochs = 6;
  cfg.presence.max_autoencoder_rows = 200;
  cfg.max_iterations = 3;
  return cfg;
}

struct PipelineFixture {
  data::SyntheticWorld world = data::generate_world(pipeline_world_config());
  eval::LabeledPairs pairs =
      eval::sample_candidate_pairs(world.dataset, eval::PairSamplingConfig{});
  eval::PairSplit split = eval::split_pairs(pairs, 0.7, 3);
};

TEST(Pipeline, EndToEndRunsAndBeatsChance) {
  PipelineFixture fx;
  FriendSeeker seeker(fast_seeker_config());
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  ASSERT_EQ(result.test_predictions.size(), fx.split.test_pairs.size());
  ASSERT_EQ(result.test_scores.size(), fx.split.test_pairs.size());
  EXPECT_GE(result.iterations.size(), 2u);  // phase-1 record + >=1 iteration
  const ml::Prf prf = ml::prf(fx.split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.5);  // far above the 0 of random-on-balanced... and
                           // comfortably above all-positive's implied bound
}

TEST(Pipeline, IterationRecordsAreConsistent) {
  PipelineFixture fx;
  FriendSeeker seeker(fast_seeker_config());
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    const IterationRecord& rec = result.iterations[i];
    EXPECT_EQ(rec.iteration, static_cast<int>(i));
    EXPECT_EQ(rec.test_predictions.size(), fx.split.test_pairs.size());
    EXPECT_GE(rec.edge_change_ratio, 0.0);
  }
  // Final predictions equal the last iteration's record.
  EXPECT_EQ(result.test_predictions,
            result.iterations.back().test_predictions);
  // The final graph's edge count matches the last record.
  EXPECT_EQ(result.final_graph.edge_count(),
            result.iterations.back().graph_edges);
}

TEST(Pipeline, PhaseOneOnlyAblation) {
  PipelineFixture fx;
  FriendSeekerConfig cfg = fast_seeker_config();
  cfg.iterate = false;
  FriendSeeker seeker(cfg);
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  EXPECT_EQ(result.iterations.size(), 1u);
  EXPECT_EQ(result.iterations_run, 0);
}

TEST(Pipeline, HeuristicSocialFeatureAblationRuns) {
  PipelineFixture fx;
  FriendSeekerConfig cfg = fast_seeker_config();
  cfg.use_social_feature = false;
  FriendSeeker seeker(cfg);
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  const ml::Prf prf = ml::prf(fx.split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.3);
}

TEST(Pipeline, UniformGridAblationRuns) {
  PipelineFixture fx;
  FriendSeekerConfig cfg = fast_seeker_config();
  cfg.uniform_grid = true;
  cfg.uniform_rows = 4;
  cfg.uniform_cols = 4;
  FriendSeeker seeker(cfg);
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  const ml::Prf prf = ml::prf(fx.split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.3);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  PipelineFixture fx;
  FriendSeeker a(fast_seeker_config());
  FriendSeeker b(fast_seeker_config());
  const auto ra = a.run(fx.world.dataset, fx.split.train_pairs,
                        fx.split.train_labels, fx.split.test_pairs);
  const auto rb = b.run(fx.world.dataset, fx.split.train_pairs,
                        fx.split.train_labels, fx.split.test_pairs);
  EXPECT_EQ(ra.test_predictions, rb.test_predictions);
  EXPECT_EQ(ra.iterations_run, rb.iterations_run);
}

TEST(Pipeline, ValidatesArguments) {
  PipelineFixture fx;
  FriendSeekerConfig bad = fast_seeker_config();
  bad.k = 1;
  EXPECT_THROW(FriendSeeker{bad}, std::invalid_argument);
  bad = fast_seeker_config();
  bad.tau_days = 0.0;
  EXPECT_THROW(FriendSeeker{bad}, std::invalid_argument);

  FriendSeeker seeker(fast_seeker_config());
  EXPECT_THROW(seeker.run(fx.world.dataset, {}, {}, fx.split.test_pairs),
               std::invalid_argument);
  EXPECT_THROW(
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 std::vector<int>(3, 0), fx.split.test_pairs),
      std::invalid_argument);
}

TEST(Pipeline, LogisticPhase2ClassifierWorks) {
  PipelineFixture fx;
  FriendSeekerConfig cfg = fast_seeker_config();
  cfg.phase2_classifier = FriendSeekerConfig::Phase2Classifier::kLogistic;
  FriendSeeker seeker(cfg);
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  const ml::Prf prf = ml::prf(fx.split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.4);  // classifier-agnostic: still far above chance
}

class PipelineKSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineKSweep, RunsForAllK) {
  PipelineFixture fx;
  FriendSeekerConfig cfg = fast_seeker_config();
  cfg.k = GetParam();
  cfg.max_iterations = 2;
  FriendSeeker seeker(cfg);
  const FriendSeekerResult result =
      seeker.run(fx.world.dataset, fx.split.train_pairs,
                 fx.split.train_labels, fx.split.test_pairs);
  const ml::Prf prf = ml::prf(fx.split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.3) << "k=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(KValues, PipelineKSweep, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace fs::core
