// Round-trip tests for the binary model serialization layer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/presence.h"
#include "ml/knn.h"
#include "ml/scaler.h"
#include "ml/svm.h"
#include "nn/layers.h"
#include "nn/supervised_autoencoder.h"
#include "util/binary_io.h"
#include "util/error.h"

namespace fs {
namespace {

// ---------- primitives ----------

TEST(BinaryIo, ScalarsRoundTrip) {
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  writer.tag("TEST");
  writer.u64(42);
  writer.i64(-7);
  writer.f64(3.25);
  writer.str("hello");
  writer.f64_vector({1.0, 2.0});
  writer.i32_vector({-1, 5});

  util::BinaryReader reader(stream);
  reader.expect_tag("TEST");
  EXPECT_EQ(reader.u64(), 42u);
  EXPECT_EQ(reader.i64(), -7);
  EXPECT_DOUBLE_EQ(reader.f64(), 3.25);
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.f64_vector(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(reader.i32_vector(), (std::vector<int>{-1, 5}));
}

TEST(BinaryIo, Crc32KnownVector) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  const char* data = "123456789";
  EXPECT_EQ(util::crc32(data, 9), 0xCBF43926u);
  // Seeded continuation equals the one-shot over the concatenation.
  const std::uint32_t first = util::crc32(data, 4);
  EXPECT_EQ(util::crc32(data + 4, 5, first), 0xCBF43926u);
  util::Crc32 incremental;
  incremental.update(data, 3);
  incremental.update(data + 3, 6);
  EXPECT_EQ(incremental.value(), 0xCBF43926u);
}

TEST(BinaryIo, CrcRegionRoundTrip) {
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  writer.tag("HDRX");
  writer.crc_begin();
  writer.u64(77);
  writer.str("payload");
  writer.f64_vector({1.5, -2.5});
  const std::uint32_t written = writer.crc_end();

  util::BinaryReader reader(stream);
  reader.expect_tag("HDRX");
  reader.crc_begin();
  EXPECT_EQ(reader.u64(), 77u);
  EXPECT_EQ(reader.str(), "payload");
  EXPECT_EQ(reader.f64_vector(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(reader.crc_end(), written);
}

TEST(BinaryIo, CrcRegionDetectsBitFlip) {
  std::stringstream stream;
  {
    util::BinaryWriter writer(stream);
    writer.crc_begin();
    writer.u64(77);
    writer.str("payload");
    writer.crc_end();
  }
  std::string bytes = stream.str();
  // Layout: u64 value (8 bytes), string length (8 bytes), then the chars;
  // flip a bit inside the character payload so every field still parses.
  bytes[17] ^= 0x40;
  std::istringstream corrupted(bytes);
  util::BinaryReader reader(corrupted);
  reader.crc_begin();
  reader.u64();
  reader.str();
  EXPECT_THROW(reader.crc_end(), CorruptCheckpoint);
}

TEST(BinaryIo, TagMismatchThrows) {
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  writer.tag("AAAA");
  util::BinaryReader reader(stream);
  EXPECT_THROW(reader.expect_tag("BBBB"), std::runtime_error);
}

TEST(BinaryIo, TruncatedStreamThrows) {
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  writer.u64(1);
  util::BinaryReader reader(stream);
  reader.u64();
  EXPECT_THROW(reader.u64(), std::runtime_error);
}

// ---------- nn ----------

TEST(Serialization, DenseRoundTripPreservesInference) {
  util::Rng rng(3);
  nn::Dense layer(4, 3, nn::Activation::kTanh, rng);
  nn::Matrix x(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  layer.save(writer);
  util::BinaryReader reader(stream);
  const nn::Dense loaded = nn::Dense::load(reader);

  const nn::Matrix before = layer.infer(x);
  const nn::Matrix after = loaded.infer(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before.data()[i], after.data()[i]);
  EXPECT_EQ(loaded.activation(), nn::Activation::kTanh);
}

TEST(Serialization, MlpRoundTrip) {
  util::Rng rng(5);
  nn::Mlp mlp({3, 8, 2}, nn::Activation::kRelu, nn::Activation::kIdentity,
              rng);
  nn::Matrix x(4, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  mlp.save(writer);
  util::BinaryReader reader(stream);
  const nn::Mlp loaded = nn::Mlp::load(reader);

  const nn::Matrix before = mlp.infer(x);
  const nn::Matrix after = loaded.infer(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before.data()[i], after.data()[i]);
}

TEST(Serialization, SupervisedAutoencoderRoundTrip) {
  util::Rng rng(7);
  nn::AutoencoderConfig cfg;
  cfg.encoder_dims = {10, 6, 3};
  cfg.epochs = 10;
  nn::SupervisedAutoencoder ae(cfg);
  nn::Matrix x(32, 10);
  std::vector<int> y(32);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
  ae.train(x, y);

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  ae.save(writer);
  util::BinaryReader reader(stream);
  const nn::SupervisedAutoencoder loaded =
      nn::SupervisedAutoencoder::load(reader);

  EXPECT_EQ(loaded.input_dim(), ae.input_dim());
  EXPECT_EQ(loaded.code_dim(), ae.code_dim());
  const auto before = ae.predict_proba(x);
  const auto after = loaded.predict_proba(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
  const nn::Matrix code_before = ae.encode(x);
  const nn::Matrix code_after = loaded.encode(x);
  for (std::size_t i = 0; i < code_before.size(); ++i)
    EXPECT_DOUBLE_EQ(code_before.data()[i], code_after.data()[i]);
}

// ---------- ml ----------

TEST(Serialization, ScalerRoundTrip) {
  ml::StandardScaler scaler;
  scaler.fit(nn::Matrix::from_rows({{1, 10}, {3, 20}, {5, 60}}));
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  scaler.save(writer);
  util::BinaryReader reader(stream);
  const ml::StandardScaler loaded = ml::StandardScaler::load(reader);
  EXPECT_EQ(loaded.mean(), scaler.mean());
  EXPECT_EQ(loaded.stddev(), scaler.stddev());
}

TEST(Serialization, KnnRoundTrip) {
  util::Rng rng(11);
  nn::Matrix x(30, 4);
  std::vector<int> y(30);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
  ml::KnnClassifier knn(5);
  knn.fit(x, y);

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  knn.save(writer);
  util::BinaryReader reader(stream);
  const ml::KnnClassifier loaded = ml::KnnClassifier::load(reader);
  EXPECT_EQ(loaded.k(), 5u);
  const auto before = knn.predict_proba(x);
  const auto after = loaded.predict_proba(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
}

TEST(Serialization, SvmRoundTripWithCalibration) {
  util::Rng rng(13);
  nn::Matrix x(60, 3);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < 3; ++c)
      x(i, c) = rng.normal(y[i] ? 1.0 : -1.0, 0.8);
  }
  ml::SvmClassifier svm;
  svm.fit(x, y);
  svm.calibrate(x, y);

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  svm.save(writer);
  util::BinaryReader reader(stream);
  const ml::SvmClassifier loaded = ml::SvmClassifier::load(reader);
  EXPECT_TRUE(loaded.trained());
  EXPECT_TRUE(loaded.calibrated());
  EXPECT_EQ(loaded.support_vector_count(), svm.support_vector_count());
  const auto before = svm.predict_proba(x);
  const auto after = loaded.predict_proba(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
}

// ---------- core ----------

TEST(Serialization, PresenceModelRoundTrip) {
  util::Rng rng(17);
  const std::size_t dim = 40;
  nn::Matrix x(80, dim);
  std::vector<int> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t c = 0; c < dim; ++c)
      x(i, c) = std::log1p(
          (y[i] && c > dim / 2 ? 1.0 : 0.0) + (rng.uniform() < 0.2));
  }
  core::PresenceModelConfig cfg;
  cfg.feature_dim = 8;
  cfg.epochs = 8;
  core::PresenceModel model(cfg);
  model.train(x, y);

  std::stringstream stream;
  util::BinaryWriter writer(stream);
  model.save(writer);
  util::BinaryReader reader(stream);
  const core::PresenceModel loaded = core::PresenceModel::load(reader);
  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.feature_dim(), model.feature_dim());
  const auto before = model.predict_proba(x);
  const auto after = loaded.predict_proba(x);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_DOUBLE_EQ(before[i], after[i]);
}

TEST(Serialization, UntrainedModelRefusesToSave) {
  core::PresenceModel model(core::PresenceModelConfig{});
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  EXPECT_THROW(model.save(writer), std::logic_error);
}

}  // namespace
}  // namespace fs
