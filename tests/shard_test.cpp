// fs::shard subsystem tests: shard-plan partition invariants, the sharded
// CellIndex byte-identity guarantee, the sharded candidate generator's
// equality with the monolithic one (including cross-shard pairs that only
// the global hop tier can see), pair-ownership accounting, and the headline
// differential: the full pipeline's result digest is identical at any shard
// count, including the monolithic shards=0 path.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "block/candidate_gen.h"
#include "block/cell_index.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/digest.h"
#include "eval/harness.h"
#include "eval/presets.h"
#include "geo/quadtree.h"
#include "shard/shard_plan.h"
#include "shard/sharded_candidates.h"
#include "shard/sharded_index.h"

namespace fs {
namespace {

// ---------- ShardPlan ----------

TEST(ShardPlan, PartitionsTheGridRange) {
  const std::vector<std::uint64_t> weights = {5, 0, 12, 3, 3, 7, 1, 0, 9, 4};
  for (std::size_t count : {1u, 2u, 3u, 4u, 7u, 10u, 15u}) {
    const shard::ShardPlan plan = shard::ShardPlan::build(weights, count);
    ASSERT_EQ(plan.shard_count(), count);
    // Contiguous cover of [0, grids): each shard starts where the previous
    // ended, first at 0, last at grid_count.
    std::uint32_t cursor = 0;
    for (const shard::ShardRange& r : plan.shards()) {
      EXPECT_EQ(r.grid_lo, cursor);
      EXPECT_LE(r.grid_lo, r.grid_hi);
      cursor = r.grid_hi;
    }
    EXPECT_EQ(cursor, weights.size());
    // Every grid maps back to the shard that contains it.
    for (std::uint32_t g = 0; g < weights.size(); ++g) {
      const std::size_t s = plan.shard_of_grid(g);
      EXPECT_GE(g, plan.shard(s).grid_lo);
      EXPECT_LT(g, plan.shard(s).grid_hi);
    }
  }
}

TEST(ShardPlan, IsDeterministicAndBalanced) {
  std::vector<std::uint64_t> weights(64);
  for (std::size_t i = 0; i < weights.size(); ++i)
    weights[i] = (i * 37 + 11) % 23;
  const shard::ShardPlan a = shard::ShardPlan::build(weights, 4);
  const shard::ShardPlan b = shard::ShardPlan::build(weights, 4);
  EXPECT_EQ(a.shards(), b.shards());
  // Greedy prefix cuts land within one grid's weight of the ideal quarter.
  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
  const std::uint64_t heaviest =
      *std::max_element(weights.begin(), weights.end());
  for (const shard::ShardRange& r : a.shards()) {
    std::uint64_t got = 0;
    for (std::uint32_t g = r.grid_lo; g < r.grid_hi; ++g) got += weights[g];
    EXPECT_LE(got, total / 4 + 2 * heaviest);
  }
}

TEST(ShardPlan, ZeroWeightsSplitByGridCount) {
  const std::vector<std::uint64_t> weights(8, 0);
  const shard::ShardPlan plan = shard::ShardPlan::build(weights, 4);
  for (const shard::ShardRange& r : plan.shards())
    EXPECT_EQ(r.grid_count(), 2u);
}

TEST(ShardPlan, MoreShardsThanGridsDegradesGracefully) {
  const std::vector<std::uint64_t> weights = {4, 4};
  const shard::ShardPlan plan = shard::ShardPlan::build(weights, 5);
  EXPECT_EQ(plan.shard_count(), 5u);
  std::size_t non_empty = 0;
  for (const shard::ShardRange& r : plan.shards())
    non_empty += r.grid_count() > 0 ? 1 : 0;
  EXPECT_EQ(non_empty, 2u);
  EXPECT_EQ(plan.shards().back().grid_hi, 2u);
}

TEST(ShardPlan, RejectsZeroShards) {
  const std::vector<std::uint64_t> weights = {1, 2};
  EXPECT_THROW(shard::ShardPlan::build(weights, 0), std::invalid_argument);
}

// ---------- sharded index + candidates ----------

struct ShardWorld {
  data::SyntheticWorld world;
  std::unique_ptr<geo::QuadtreeDivision> quadtree;
  std::unique_ptr<geo::QuadtreeDivisionView> division;
  std::unique_ptr<geo::TimeSlotting> slots;
  std::unique_ptr<block::CellIndex> monolithic;
  shard::BinnedCheckins binned;
};

ShardWorld make_shard_world(std::uint64_t seed, std::size_t users = 70) {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = users;
  cfg.poi_count = 180;
  cfg.city_count = 3;
  cfg.weeks = 4;
  cfg.seed = seed;
  ShardWorld out;
  out.world = data::generate_world(cfg);
  out.quadtree = std::make_unique<geo::QuadtreeDivision>(
      out.world.dataset.poi_coordinates(), 30);
  out.division = std::make_unique<geo::QuadtreeDivisionView>(*out.quadtree);
  out.slots = std::make_unique<geo::TimeSlotting>(
      out.world.dataset.window_begin(), out.world.dataset.window_end(),
      7 * geo::kSecondsPerDay);
  out.monolithic = std::make_unique<block::CellIndex>(
      out.world.dataset, *out.division, *out.slots);
  out.binned = shard::bin_checkins(out.world.dataset, *out.division,
                                   *out.slots);
  return out;
}

TEST(ShardedIndex, ByteIdenticalToMonolithicAtAnyShardCount) {
  const ShardWorld sw = make_shard_world(61);
  const std::size_t grids = sw.division->cell_count();
  const auto weights = shard::grid_row_weights(sw.binned, grids);
  for (std::size_t count : {1u, 2u, 4u, 9u}) {
    const shard::ShardPlan plan = shard::ShardPlan::build(weights, count);
    const block::CellIndex sharded = shard::build_sharded_index(
        sw.world.dataset, sw.binned, *sw.slots, grids, plan);
    ASSERT_EQ(sharded.user_count(), sw.monolithic->user_count());
    EXPECT_EQ(sharded.signature(), sw.monolithic->signature())
        << "shard count " << count;
    for (data::UserId u = 0; u < sharded.user_count(); ++u) {
      const auto a = sharded.cell_profile(u);
      const auto b = sw.monolithic->cell_profile(u);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "user " << u << " at shard count " << count;
    }
  }
}

TEST(ShardedIndex, RowWeightsAccountEveryCheckin) {
  const ShardWorld sw = make_shard_world(62);
  const std::size_t grids = sw.division->cell_count();
  const auto weights = shard::grid_row_weights(sw.binned, grids);
  EXPECT_EQ(std::accumulate(weights.begin(), weights.end(), std::uint64_t{0}),
            sw.world.dataset.checkin_count());
  const shard::ShardPlan plan = shard::ShardPlan::build(weights, 3);
  const auto rows = shard::shard_row_counts(sw.binned, plan);
  EXPECT_EQ(std::accumulate(rows.begin(), rows.end(), std::uint64_t{0}),
            sw.world.dataset.checkin_count());
}

TEST(ShardedCandidates, EqualToMonolithicGenerator) {
  const ShardWorld sw = make_shard_world(63);
  block::BlockingConfig config;
  config.slot_tolerance = 1;
  config.hop_expansion = 2;
  const auto expect =
      block::generate_candidate_pairs(*sw.monolithic, config);
  const auto weights =
      shard::grid_row_weights(sw.binned, sw.division->cell_count());
  for (std::size_t count : {1u, 2u, 4u}) {
    const shard::ShardPlan plan = shard::ShardPlan::build(weights, count);
    const auto got = shard::generate_candidate_pairs_sharded(
        *sw.monolithic, config, plan);
    EXPECT_EQ(got, expect) << "shard count " << count;
  }
}

TEST(ShardedCandidates, HopTierCrossesShardBoundaries) {
  // The halo story's sharp edge: a pair admitted purely by hop expansion —
  // no shared cell anywhere — whose two users live in different shards. A
  // per-shard hop pass could never emit it; the global hop tier must.
  const ShardWorld sw = make_shard_world(64);
  block::BlockingConfig config;
  config.slot_tolerance = 1;
  config.hop_expansion = 3;
  const auto weights =
      shard::grid_row_weights(sw.binned, sw.division->cell_count());
  const shard::ShardPlan plan = shard::ShardPlan::build(weights, 4);
  const auto pairs = shard::generate_candidate_pairs_sharded(
      *sw.monolithic, config, plan);
  bool found_cross_shard_hop_pair = false;
  for (const data::UserPair& pr : pairs) {
    if (sw.monolithic->cooccur(pr.first, pr.second, config.slot_tolerance))
      continue;  // admitted by the cell tier, not what we're after
    if (shard::owner_shard(*sw.monolithic, plan, {pr.first, pr.first}) !=
        shard::owner_shard(*sw.monolithic, plan, {pr.second, pr.second})) {
      found_cross_shard_hop_pair = true;
      break;
    }
  }
  EXPECT_TRUE(found_cross_shard_hop_pair)
      << "world produced no hop-only cross-shard pair; the edge case is "
         "untested — regenerate with a different seed";
}

TEST(ShardedCandidates, EveryPairHasExactlyOneOwner) {
  const ShardWorld sw = make_shard_world(65);
  block::BlockingConfig config;
  const auto weights =
      shard::grid_row_weights(sw.binned, sw.division->cell_count());
  const shard::ShardPlan plan = shard::ShardPlan::build(weights, 3);
  const auto pairs =
      block::generate_candidate_pairs(*sw.monolithic, config);
  std::vector<std::size_t> owned(plan.shard_count(), 0);
  for (const data::UserPair& pr : pairs) {
    const std::size_t s = shard::owner_shard(*sw.monolithic, plan, pr);
    ASSERT_LT(s, plan.shard_count());
    ++owned[s];
  }
  EXPECT_EQ(std::accumulate(owned.begin(), owned.end(), std::size_t{0}),
            pairs.size());
}

// ---------- the headline differential ----------

TEST(ShardDifferential, DigestIdenticalAtAnyShardCount) {
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);

  core::FriendSeekerConfig base = preset.seeker;
  base.shards = 0;  // the untouched monolithic path
  core::FriendSeeker monolithic(base);
  const core::FriendSeekerResult expect = monolithic.run(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);
  const std::string expect_result = eval::result_digest(expect);
  const std::string expect_graph = eval::graph_digest(expect.final_graph);
  EXPECT_TRUE(expect.shards.empty());

  for (std::size_t count : {1u, 2u, 4u}) {
    core::FriendSeekerConfig cfg = preset.seeker;
    cfg.shards = count;
    core::FriendSeeker seeker(cfg);
    const core::FriendSeekerResult got = seeker.run(
        experiment.dataset, experiment.split.train_pairs,
        experiment.split.train_labels, experiment.split.test_pairs);
    EXPECT_EQ(eval::result_digest(got), expect_result)
        << "shards=" << count << " diverged from the monolithic run";
    EXPECT_EQ(eval::graph_digest(got.final_graph), expect_graph)
        << "shards=" << count << " final graph diverged";
    ASSERT_EQ(got.shards.size(), count);
    // Ownership accounting: every universe pair owned by exactly one shard,
    // so the per-shard universes sum to the blocking totals — the invariant
    // perf_bench --validate re-checks from the emitted JSON (schema v4).
    std::uint64_t universe = 0, scored = 0, pruned = 0;
    for (const shard::ShardRunStats& st : got.shards) {
      EXPECT_EQ(st.universe_pairs, st.scored_pairs + st.pruned_pairs);
      universe += st.universe_pairs;
      scored += st.scored_pairs;
      pruned += st.pruned_pairs;
    }
    EXPECT_EQ(universe, got.blocking.universe_pairs);
    EXPECT_EQ(scored, got.blocking.scored_pairs);
    EXPECT_EQ(pruned, got.blocking.pruned_pairs);
    // Row accounting: shard stripes cover the dataset exactly once.
    std::uint64_t rows = 0;
    for (const shard::ShardRunStats& st : got.shards) rows += st.rows;
    EXPECT_EQ(rows, experiment.dataset.checkin_count());
  }
}

TEST(ShardDifferential, BlockingOnStaysIdenticalWhenSharded) {
  // Force blocking kOn so the pruned tier is non-trivial, then require the
  // same digest sharded and not: pruning decisions must not depend on the
  // shard layout.
  const eval::BenchPreset preset = eval::bench_preset("tiny");
  const eval::Experiment experiment = eval::make_experiment(preset.world);
  core::FriendSeekerConfig base = preset.seeker;
  base.blocking.mode = block::BlockingMode::kOn;
  base.shards = 0;
  core::FriendSeeker monolithic(base);
  const auto expect = monolithic.run(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);

  core::FriendSeekerConfig cfg = base;
  cfg.shards = 3;
  core::FriendSeeker seeker(cfg);
  const auto got = seeker.run(
      experiment.dataset, experiment.split.train_pairs,
      experiment.split.train_labels, experiment.split.test_pairs);
  EXPECT_EQ(eval::result_digest(got), eval::result_digest(expect));
  EXPECT_EQ(got.blocking_active, expect.blocking_active);
  EXPECT_EQ(got.blocking.pruned_pairs, expect.blocking.pruned_pairs);
}

}  // namespace
}  // namespace fs
