#include <gtest/gtest.h>

#include <set>

#include "eval/harness.h"
#include "eval/pairs.h"

namespace fs::eval {
namespace {

data::SyntheticWorldConfig tiny_world() {
  data::SyntheticWorldConfig cfg;
  cfg.user_count = 120;
  cfg.poi_count = 300;
  cfg.city_count = 3;
  cfg.weeks = 6;
  cfg.seed = 55;
  return cfg;
}

// ---------- candidate-pair sampling ----------

TEST(Pairs, PositivesAreExactlyGroundTruthEdges) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset);
  EXPECT_EQ(pairs.positives(), world.dataset.friendships().edge_count());
  for (std::size_t i = 0; i < pairs.pairs.size(); ++i) {
    const auto [a, b] = pairs.pairs[i];
    EXPECT_EQ(pairs.labels[i] != 0,
              world.dataset.friendships().has_edge(a, b));
  }
}

TEST(Pairs, BalancedNegativeSample) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset);
  const std::size_t negatives = pairs.pairs.size() - pairs.positives();
  EXPECT_NEAR(static_cast<double>(negatives) /
                  static_cast<double>(pairs.positives()),
              1.0, 0.05);
}

TEST(Pairs, NoDuplicatePairs) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset);
  std::set<data::UserPair> seen(pairs.pairs.begin(), pairs.pairs.end());
  EXPECT_EQ(seen.size(), pairs.pairs.size());
}

TEST(Pairs, PairsAreCanonicallyOrdered) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset);
  for (const auto& [a, b] : pairs.pairs) EXPECT_LT(a, b);
}

TEST(Pairs, DeterministicGivenSeed) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs a = sample_candidate_pairs(world.dataset);
  const LabeledPairs b = sample_candidate_pairs(world.dataset);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Pairs, NegativeRatioScalesSample) {
  const auto world = data::generate_world(tiny_world());
  PairSamplingConfig cfg;
  cfg.negative_ratio = 2.0;
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset, cfg);
  const std::size_t negatives = pairs.pairs.size() - pairs.positives();
  EXPECT_NEAR(static_cast<double>(negatives) /
                  static_cast<double>(pairs.positives()),
              2.0, 0.1);
}

TEST(Pairs, HardNegativesShareAFriend) {
  const auto world = data::generate_world(tiny_world());
  PairSamplingConfig cfg;
  cfg.hard_negative_fraction = 1.0;
  const LabeledPairs pairs = sample_candidate_pairs(world.dataset, cfg);
  std::size_t hard = 0, negatives = 0;
  for (std::size_t i = 0; i < pairs.pairs.size(); ++i) {
    if (pairs.labels[i]) continue;
    ++negatives;
    const auto [a, b] = pairs.pairs[i];
    hard += world.dataset.friendships().common_neighbor_count(a, b) > 0;
  }
  ASSERT_GT(negatives, 0u);
  EXPECT_GT(static_cast<double>(hard) / static_cast<double>(negatives), 0.8);
}

TEST(Pairs, EmptyGraphThrows) {
  std::vector<data::Poi> pois{{{0, 0}, 0}};
  std::vector<data::CheckIn> checkins{{0, 0, 0, {0, 0}},
                                      {1, 0, 1, {0, 0}}};
  graph::Graph g(2);  // no edges
  const auto ds =
      data::Dataset::build(2, std::move(pois), std::move(checkins), g);
  EXPECT_THROW(sample_candidate_pairs(ds), std::invalid_argument);
}

// ---------- splitting ----------

TEST(Pairs, SplitPreservesAllPairs) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs all = sample_candidate_pairs(world.dataset);
  const PairSplit split = split_pairs(all, 0.7, 3);
  EXPECT_EQ(split.train_pairs.size() + split.test_pairs.size(),
            all.pairs.size());
  EXPECT_EQ(split.train_pairs.size(), split.train_labels.size());
  EXPECT_EQ(split.test_pairs.size(), split.test_labels.size());
  EXPECT_NEAR(static_cast<double>(split.train_pairs.size()) /
                  static_cast<double>(all.pairs.size()),
              0.7, 0.02);
  // Disjoint.
  std::set<data::UserPair> train(split.train_pairs.begin(),
                                 split.train_pairs.end());
  for (const auto& p : split.test_pairs) EXPECT_EQ(train.count(p), 0u);
}

TEST(Pairs, SplitStratificationHoldsOnOddPools) {
  // Hand-built label sets with odd-sized positive pools: the per-class cut
  // must keep at least one member of every class on each side — tiny pools
  // used to lose a whole class to one split.
  for (const std::size_t positives : {3u, 5u, 7u, 9u, 11u}) {
    LabeledPairs all;
    const std::size_t negatives = positives + 1;  // odd + even mix
    for (std::size_t i = 0; i < positives + negatives; ++i) {
      all.pairs.push_back({static_cast<data::UserId>(i),
                           static_cast<data::UserId>(i + 100)});
      all.labels.push_back(i < positives ? 1 : 0);
    }
    const PairSplit split = split_pairs(all, 0.7, 11);
    const auto count_ones = [](const std::vector<int>& labels) {
      return static_cast<std::size_t>(
          std::count(labels.begin(), labels.end(), 1));
    };
    const std::size_t train_pos = count_ones(split.train_labels);
    const std::size_t test_pos = count_ones(split.test_labels);
    EXPECT_EQ(train_pos + test_pos, positives);
    // Every class present on both sides.
    EXPECT_GE(train_pos, 1u) << positives << " positives";
    EXPECT_GE(test_pos, 1u) << positives << " positives";
    EXPECT_GE(split.train_labels.size() - train_pos, 1u);
    EXPECT_GE(split.test_labels.size() - test_pos, 1u);
    // The train share of each class is within one element of 70 %.
    const double expected_pos = 0.7 * static_cast<double>(positives);
    EXPECT_LE(std::abs(static_cast<double>(train_pos) - expected_pos), 1.0)
        << positives << " positives";
  }
}

TEST(Pairs, SplitIsDeterministicAcrossIdenticalSeeds) {
  const auto world = data::generate_world(tiny_world());
  const LabeledPairs all = sample_candidate_pairs(world.dataset);
  const PairSplit a = split_pairs(all, 0.7, 9);
  const PairSplit b = split_pairs(all, 0.7, 9);
  EXPECT_EQ(a.train_pairs, b.train_pairs);
  EXPECT_EQ(a.train_labels, b.train_labels);
  EXPECT_EQ(a.test_pairs, b.test_pairs);
  EXPECT_EQ(a.test_labels, b.test_labels);
  // A different seed actually reshuffles (not a constant function).
  const PairSplit c = split_pairs(all, 0.7, 10);
  EXPECT_NE(a.train_pairs, c.train_pairs);
}

// ---------- harness ----------

TEST(Harness, MakeExperimentFromPreset) {
  const Experiment e = make_experiment(tiny_world());
  EXPECT_EQ(e.name, "synthetic");
  EXPECT_GT(e.split.train_pairs.size(), 0u);
  EXPECT_GT(e.split.test_pairs.size(), 0u);
  EXPECT_EQ(e.dataset.user_count(), 120u);
}

TEST(Harness, StratifiedPrfFiltersPairs) {
  const std::vector<data::UserPair> pairs{{0, 1}, {0, 2}, {1, 2}};
  const std::vector<int> labels{1, 0, 1};
  const std::vector<int> pred{1, 1, 0};
  // Keep only pairs containing user 0.
  const ml::Prf all = stratified_prf(pairs, labels, pred,
                                     [](const data::UserPair&) {
                                       return true;
                                     });
  const ml::Prf only0 =
      stratified_prf(pairs, labels, pred, [](const data::UserPair& p) {
        return p.first == 0;
      });
  EXPECT_DOUBLE_EQ(only0.precision, 0.5);
  EXPECT_DOUBLE_EQ(only0.recall, 1.0);
  EXPECT_LT(all.recall, 1.0);
}

TEST(Harness, PairBucketsMatchDataset) {
  const auto world = data::generate_world(tiny_world());
  const std::vector<data::UserPair> pairs{{0, 1}, {2, 3}};
  const auto commons = pair_common_locations(world.dataset, pairs);
  ASSERT_EQ(commons.size(), 2u);
  EXPECT_EQ(commons[0], world.dataset.common_poi_count(0, 1));
  const auto checkins = pair_checkin_counts(world.dataset, pairs);
  EXPECT_EQ(checkins[0], world.dataset.checkin_count(0) +
                             world.dataset.checkin_count(1));
}

TEST(Harness, MakeBaselinesReturnsAllFour) {
  const auto baselines = make_baselines();
  ASSERT_EQ(baselines.size(), 4u);
  std::set<std::string> names;
  for (const auto& b : baselines) names.insert(b->name());
  EXPECT_TRUE(names.count("co-location"));
  EXPECT_TRUE(names.count("distance"));
  EXPECT_TRUE(names.count("walk2friends"));
  EXPECT_TRUE(names.count("user-graph-embedding"));
}

TEST(Harness, DefaultSeekerConfigMatchesPaperChoices) {
  const core::FriendSeekerConfig cfg = default_seeker_config();
  EXPECT_EQ(cfg.k, 3);                       // paper: k = 3 optimal
  EXPECT_DOUBLE_EQ(cfg.tau_days, 7.0);       // paper: tau = 7 days peaks
  EXPECT_TRUE(cfg.use_social_feature);
  EXPECT_TRUE(cfg.iterate);
}

TEST(Harness, FriendSeekerAttackAdapterWorksEndToEnd) {
  Experiment e = make_experiment(tiny_world());
  core::FriendSeekerConfig cfg = default_seeker_config();
  cfg.sigma = 60;
  cfg.presence.feature_dim = 16;
  cfg.presence.epochs = 5;
  cfg.presence.max_autoencoder_rows = 150;
  cfg.max_iterations = 2;
  FriendSeekerAttack attack(cfg);
  const ml::Prf prf = run_attack(attack, e);
  EXPECT_GT(prf.f1, 0.4);
  EXPECT_GE(attack.last_result().iterations.size(), 1u);
}

}  // namespace
}  // namespace fs::eval
