#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/dataset.h"
#include "data/loader.h"
#include "data/obfuscation.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "util/error.h"

namespace fs::data {
namespace {

Dataset tiny_dataset() {
  // 3 users, 4 POIs. User 0 and 1 share POIs 0 and 1; user 2 is a loner.
  std::vector<Poi> pois{
      {{0.1, 0.1}, 0}, {{0.2, 0.2}, 1}, {{0.9, 0.9}, 2}, {{0.5, 0.5}, 3}};
  std::vector<CheckIn> checkins{
      {0, 0, 100, {0.1, 0.1}}, {0, 1, 300, {0.2, 0.2}},
      {0, 0, 200, {0.1, 0.1}}, {1, 0, 150, {0.1, 0.1}},
      {1, 1, 400, {0.2, 0.2}}, {2, 2, 500, {0.9, 0.9}},
      {2, 3, 50, {0.5, 0.5}}};
  graph::Graph g(3);
  g.add_edge(0, 1);
  return Dataset::build(3, std::move(pois), std::move(checkins),
                        std::move(g));
}

// ---------- Dataset ----------

TEST(Dataset, TrajectoriesAreTimeSorted) {
  const Dataset ds = tiny_dataset();
  const auto t0 = ds.trajectory(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0].time, 100);
  EXPECT_EQ(t0[1].time, 200);
  EXPECT_EQ(t0[2].time, 300);
}

TEST(Dataset, CountsAndWindow) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.user_count(), 3u);
  EXPECT_EQ(ds.poi_count(), 4u);
  EXPECT_EQ(ds.checkin_count(), 7u);
  EXPECT_EQ(ds.checkin_count(2), 2u);
  EXPECT_EQ(ds.window_begin(), 50);
  EXPECT_EQ(ds.window_end(), 501);
}

TEST(Dataset, VisitedPoisSortedUnique) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.visited_pois(0), (std::vector<PoiId>{0, 1}));
  EXPECT_EQ(ds.visited_pois(2), (std::vector<PoiId>{2, 3}));
}

TEST(Dataset, CommonPoiCount) {
  const Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.common_poi_count(0, 1), 2u);
  EXPECT_EQ(ds.common_poi_count(0, 2), 0u);
}

TEST(Dataset, BuildValidatesIds) {
  std::vector<Poi> pois{{{0, 0}, 0}};
  graph::Graph g(1);
  std::vector<CheckIn> bad_user{{5, 0, 0, {0, 0}}};
  EXPECT_THROW(Dataset::build(1, pois, bad_user, g), std::invalid_argument);
  std::vector<CheckIn> bad_poi{{0, 9, 0, {0, 0}}};
  EXPECT_THROW(Dataset::build(1, pois, bad_poi, g), std::invalid_argument);
  graph::Graph wrong_size(3);
  EXPECT_THROW(Dataset::build(1, pois, {}, wrong_size),
               std::invalid_argument);
}

TEST(Dataset, WithCheckinsKeepsPoisAndGraph) {
  const Dataset ds = tiny_dataset();
  const Dataset replaced = ds.with_checkins({{0, 0, 10, {0.1, 0.1}}});
  EXPECT_EQ(replaced.poi_count(), ds.poi_count());
  EXPECT_EQ(replaced.friendships().edge_count(),
            ds.friendships().edge_count());
  EXPECT_EQ(replaced.checkin_count(), 1u);
}

TEST(Dataset, MakePairOrdered) {
  EXPECT_EQ(make_pair_ordered(5, 2), (UserPair{2, 5}));
  EXPECT_EQ(make_pair_ordered(2, 5), (UserPair{2, 5}));
}

// ---------- synthetic world ----------

SyntheticWorldConfig tiny_world_config() {
  SyntheticWorldConfig cfg;
  cfg.user_count = 120;
  cfg.poi_count = 300;
  cfg.city_count = 3;
  cfg.weeks = 6;
  cfg.seed = 5;
  return cfg;
}

TEST(Synthetic, Deterministic) {
  const SyntheticWorld a = generate_world(tiny_world_config());
  const SyntheticWorld b = generate_world(tiny_world_config());
  EXPECT_EQ(a.dataset.checkin_count(), b.dataset.checkin_count());
  EXPECT_EQ(a.dataset.friendships().edge_count(),
            b.dataset.friendships().edge_count());
  ASSERT_EQ(a.dataset.checkins().size(), b.dataset.checkins().size());
  for (std::size_t i = 0; i < a.dataset.checkins().size(); ++i) {
    EXPECT_EQ(a.dataset.checkins()[i].user, b.dataset.checkins()[i].user);
    EXPECT_EQ(a.dataset.checkins()[i].poi, b.dataset.checkins()[i].poi);
    EXPECT_EQ(a.dataset.checkins()[i].time, b.dataset.checkins()[i].time);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticWorldConfig cfg = tiny_world_config();
  const SyntheticWorld a = generate_world(cfg);
  cfg.seed = 6;
  const SyntheticWorld b = generate_world(cfg);
  EXPECT_NE(a.dataset.checkin_count(), b.dataset.checkin_count());
}

TEST(Synthetic, BasicInvariants) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const Dataset& ds = world.dataset;
  EXPECT_EQ(ds.user_count(), 120u);
  EXPECT_EQ(ds.poi_count(), 300u);
  // Every user has at least the minimum check-ins.
  for (UserId u = 0; u < ds.user_count(); ++u)
    EXPECT_GE(ds.checkin_count(u), 2u);
  // Check-in times inside the window.
  const geo::Timestamp window =
      static_cast<geo::Timestamp>(6) * 7 * geo::kSecondsPerDay;
  for (const CheckIn& c : ds.checkins()) {
    EXPECT_GE(c.time, 0);
    EXPECT_LT(c.time, window);
  }
  // Edge annotations partition the graph's edges.
  EXPECT_EQ(world.real_edges.size() + world.cyber_edges.size(),
            ds.friendships().edge_count());
  for (const graph::Edge& e : world.real_edges)
    EXPECT_TRUE(ds.friendships().has_edge(e.a, e.b));
  for (const graph::Edge& e : world.cyber_edges) {
    EXPECT_TRUE(ds.friendships().has_edge(e.a, e.b));
    EXPECT_TRUE(world.is_cyber_edge(e.a, e.b));
  }
  EXPECT_EQ(world.home_city.size(), ds.user_count());
  EXPECT_EQ(world.home_location.size(), ds.user_count());
}

TEST(Synthetic, RealFriendsAreSameCityBiased) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  std::size_t same_city = 0;
  for (const graph::Edge& e : world.real_edges)
    same_city += (world.home_city[e.a] == world.home_city[e.b]);
  EXPECT_GT(static_cast<double>(same_city) /
                static_cast<double>(world.real_edges.size()),
            0.9);
}

TEST(Synthetic, CyberFriendsAreMostlyCrossCity) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  ASSERT_FALSE(world.cyber_edges.empty());
  std::size_t cross_city = 0;
  for (const graph::Edge& e : world.cyber_edges)
    cross_city += (world.home_city[e.a] != world.home_city[e.b]);
  EXPECT_GT(static_cast<double>(cross_city) /
                static_cast<double>(world.cyber_edges.size()),
            0.6);
}

TEST(Synthetic, FriendsShareMorePoisThanStrangers) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const Dataset& ds = world.dataset;
  util::Rng rng(3);
  double friend_coloc = 0.0, stranger_coloc = 0.0;
  std::size_t friend_pairs = 0, stranger_pairs = 0;
  for (const graph::Edge& e : world.real_edges) {
    friend_coloc += ds.common_poi_count(e.a, e.b) > 0;
    ++friend_pairs;
  }
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<UserId>(rng.index(ds.user_count()));
    const auto b = static_cast<UserId>(rng.index(ds.user_count()));
    if (a == b || ds.friendships().has_edge(a, b)) continue;
    stranger_coloc += ds.common_poi_count(a, b) > 0;
    ++stranger_pairs;
  }
  ASSERT_GT(friend_pairs, 0u);
  ASSERT_GT(stranger_pairs, 0u);
  EXPECT_GT(friend_coloc / static_cast<double>(friend_pairs),
            2.0 * stranger_coloc / static_cast<double>(stranger_pairs));
}

TEST(Synthetic, CyberFriendsHaveCommonNeighbors) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const graph::Graph& g = world.dataset.friendships();
  std::size_t with_common = 0;
  for (const graph::Edge& e : world.cyber_edges)
    with_common += g.common_neighbor_count(e.a, e.b) > 0;
  EXPECT_GT(static_cast<double>(with_common) /
                static_cast<double>(world.cyber_edges.size()),
            0.5);
}

TEST(Synthetic, PresetsAreDistinct) {
  const SyntheticWorldConfig gw = gowalla_like();
  const SyntheticWorldConfig bk = brightkite_like();
  EXPECT_NE(gw.name, bk.name);
  // Brightkite is the denser dataset (more check-ins per user).
  EXPECT_LT(bk.checkin_alpha, gw.checkin_alpha);
  EXPECT_GT(bk.covisit_friend_prob, gw.covisit_friend_prob);
}

TEST(Synthetic, RejectsDegenerateConfigs) {
  SyntheticWorldConfig cfg = tiny_world_config();
  cfg.user_count = 3;
  EXPECT_THROW(generate_world(cfg), std::invalid_argument);
  cfg = tiny_world_config();
  cfg.city_count = 0;
  EXPECT_THROW(generate_world(cfg), std::invalid_argument);
}

// ---------- statistics ----------

TEST(Stats, DatasetStats) {
  const Dataset ds = tiny_dataset();
  const DatasetStats s = dataset_stats(ds);
  EXPECT_EQ(s.users, 3u);
  EXPECT_EQ(s.pois, 4u);
  EXPECT_EQ(s.checkins, 7u);
  EXPECT_EQ(s.links, 1u);
  EXPECT_NEAR(s.mean_checkins_per_user, 7.0 / 3.0, 1e-12);
}

TEST(Stats, CoPresenceCensusSumsToOne) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  std::vector<UserPair> friends, strangers;
  for (const graph::Edge& e : world.dataset.friendships().edges())
    friends.push_back({e.a, e.b});
  util::Rng rng(9);
  while (strangers.size() < 200) {
    const auto a =
        static_cast<UserId>(rng.index(world.dataset.user_count()));
    const auto b =
        static_cast<UserId>(rng.index(world.dataset.user_count()));
    if (a == b || world.dataset.friendships().has_edge(a, b)) continue;
    strangers.push_back(make_pair_ordered(a, b));
  }
  const CoPresenceCensus census =
      co_presence_census(world.dataset, friends, strangers);
  double friend_total = 0.0, stranger_total = 0.0;
  for (int cl = 0; cl < 2; ++cl)
    for (int cf = 0; cf < 2; ++cf) {
      friend_total += census.friends[cl][cf];
      stranger_total += census.non_friends[cl][cf];
    }
  EXPECT_NEAR(friend_total, 1.0, 1e-9);
  EXPECT_NEAR(stranger_total, 1.0, 1e-9);
  // Qualitative Table II shape: friends have far more combined evidence.
  EXPECT_GT(census.friends[1][1], census.non_friends[1][1]);
  EXPECT_GT(census.non_friends[0][0], census.friends[0][0]);
}

TEST(Stats, CountCdfBasics) {
  const CountCdf cdf({0, 0, 1, 2, 5});
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.4);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(4), 0.8);
  EXPECT_DOUBLE_EQ(cdf.at(5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99), 1.0);
  EXPECT_EQ(cdf.max_value(), 5u);
  EXPECT_EQ(cdf.sample_count(), 5u);
}

TEST(Stats, PairCountVectors) {
  const Dataset ds = tiny_dataset();
  const std::vector<UserPair> pairs{{0, 1}, {0, 2}};
  EXPECT_EQ(common_poi_counts(ds, pairs), (std::vector<std::size_t>{2, 0}));
  EXPECT_EQ(common_friend_counts(ds.friendships(), pairs),
            (std::vector<std::size_t>{0, 0}));
}

// ---------- obfuscation ----------

class ObfuscationRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(ObfuscationRatioTest, HidingRemovesApproximatelyRatio) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  util::Rng rng(21);
  const double ratio = GetParam();
  const Dataset hidden = hide_checkins(world.dataset, ratio, rng);
  const auto original = static_cast<double>(world.dataset.checkin_count());
  const auto remaining = static_cast<double>(hidden.checkin_count());
  EXPECT_NEAR(1.0 - remaining / original, ratio, 0.03);
  // Nobody is stripped bare.
  for (UserId u = 0; u < hidden.user_count(); ++u)
    EXPECT_GE(hidden.checkin_count(u), 1u);
}

INSTANTIATE_TEST_SUITE_P(Ratios, ObfuscationRatioTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

TEST(Obfuscation, HidingZeroIsIdentity) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  util::Rng rng(22);
  const Dataset hidden = hide_checkins(world.dataset, 0.0, rng);
  EXPECT_EQ(hidden.checkin_count(), world.dataset.checkin_count());
}

TEST(Obfuscation, RejectsBadRatio) {
  const Dataset ds = tiny_dataset();
  util::Rng rng(23);
  EXPECT_THROW(hide_checkins(ds, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(hide_checkins(ds, 1.5, rng), std::invalid_argument);
}

TEST(Obfuscation, InGridBlurStaysInGrid) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 40);
  util::Rng rng(25);
  const Dataset blurred = blur_in_grid(world.dataset, 0.5, division, rng);
  EXPECT_EQ(blurred.checkin_count(), world.dataset.checkin_count());
  // POIs may change but never leave their quadtree cell; compare sorted
  // per-user multisets of cells.
  for (UserId u = 0; u < world.dataset.user_count(); ++u) {
    std::multiset<std::size_t> before, after;
    for (const CheckIn& c : world.dataset.trajectory(u))
      before.insert(division.cell_of_poi(c.poi));
    for (const CheckIn& c : blurred.trajectory(u))
      after.insert(division.cell_of_poi(c.poi));
    EXPECT_EQ(before, after);
  }
}

TEST(Obfuscation, InGridBlurChangesSomePois) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 40);
  util::Rng rng(27);
  const Dataset blurred = blur_in_grid(world.dataset, 0.5, division, rng);
  std::size_t changed = 0;
  const auto& before = world.dataset.checkins();
  // Both datasets sort identically by (user, time, poi) only if POIs keep
  // order; count per-user multiset differences instead.
  for (UserId u = 0; u < world.dataset.user_count(); ++u) {
    std::multiset<PoiId> a, b;
    for (const CheckIn& c : world.dataset.trajectory(u)) a.insert(c.poi);
    for (const CheckIn& c : blurred.trajectory(u)) b.insert(c.poi);
    if (a != b) ++changed;
  }
  (void)before;
  EXPECT_GT(changed, world.dataset.user_count() / 4);
}

TEST(Obfuscation, CrossGridBlurMovesAcrossCells) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 40);
  util::Rng rng(29);
  const Dataset blurred =
      blur_cross_grid(world.dataset, 1.0, division, rng);
  EXPECT_EQ(blurred.checkin_count(), world.dataset.checkin_count());
  // With ratio 1.0, a sizable share of check-ins must land in a different
  // cell than any of the user's original cells would allow at that index.
  std::size_t moved = 0, total = 0;
  for (UserId u = 0; u < world.dataset.user_count(); ++u) {
    std::multiset<std::size_t> before;
    for (const CheckIn& c : world.dataset.trajectory(u))
      before.insert(division.cell_of_poi(c.poi));
    for (const CheckIn& c : blurred.trajectory(u)) {
      ++total;
      if (before.count(division.cell_of_poi(c.poi)) == 0) ++moved;
    }
  }
  EXPECT_GT(static_cast<double>(moved) / static_cast<double>(total), 0.2);
}

TEST(Obfuscation, BlurKeepsLocationConsistentWithPoi) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 40);
  util::Rng rng(31);
  const Dataset blurred =
      blur_cross_grid(world.dataset, 0.5, division, rng);
  for (const CheckIn& c : blurred.checkins()) {
    EXPECT_DOUBLE_EQ(c.location.lat, blurred.poi(c.poi).location.lat);
    EXPECT_DOUBLE_EQ(c.location.lng, blurred.poi(c.poi).location.lng);
  }
}

// ---------- loader ----------

TEST(Loader, ParseIso8601) {
  EXPECT_EQ(parse_iso8601_utc("1970-01-01T00:00:00Z"), 0);
  EXPECT_EQ(parse_iso8601_utc("1970-01-02T00:00:01Z"), 86401);
  // SNAP uses this format; also accept a space separator.
  EXPECT_EQ(parse_iso8601_utc("1970-01-01 01:00:00"), 3600);
  EXPECT_THROW(parse_iso8601_utc("not-a-time"), ParseError);
  EXPECT_THROW(parse_iso8601_utc("1970-13-01T00:00:00Z"), ParseError);
}

TEST(Loader, ParseIso8601RejectsImpossibleCalendarDates) {
  // Field-wise range checks alone would accept these.
  EXPECT_THROW(parse_iso8601_utc("2010-02-31T00:00:00Z"), ParseError);
  EXPECT_THROW(parse_iso8601_utc("2010-04-31T00:00:00Z"), ParseError);
  EXPECT_THROW(parse_iso8601_utc("2010-01-00T00:00:00Z"), ParseError);
  // Leap-year handling: 2012 has a Feb 29, 2011 and 2100 do not.
  EXPECT_NO_THROW(parse_iso8601_utc("2012-02-29T00:00:00Z"));
  EXPECT_THROW(parse_iso8601_utc("2011-02-29T00:00:00Z"), ParseError);
  EXPECT_THROW(parse_iso8601_utc("2100-02-29T00:00:00Z"), ParseError);
  EXPECT_NO_THROW(parse_iso8601_utc("2000-02-29T00:00:00Z"));
}

TEST(Loader, ParseIso8601RejectsTrailingGarbage) {
  EXPECT_THROW(parse_iso8601_utc("1970-01-01T00:00:00Zjunk"), ParseError);
  EXPECT_THROW(parse_iso8601_utc("1970-01-01T00:00:00+02:00"), ParseError);
  // A lone 'Z' and trailing whitespace stay legal.
  EXPECT_NO_THROW(parse_iso8601_utc("1970-01-01T00:00:00Z "));
  EXPECT_NO_THROW(parse_iso8601_utc("1970-01-01T00:00:00"));
}

TEST(Loader, RoundTripPreservesStructure) {
  const SyntheticWorld world = generate_world(tiny_world_config());
  const std::string dir = testing::TempDir() + "/fs_loader_test";
  std::filesystem::create_directories(dir);
  save_checkins_snap(world.dataset, dir + "/checkins.txt",
                     dir + "/edges.txt");
  const Dataset loaded =
      load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt");
  EXPECT_EQ(loaded.user_count(), world.dataset.user_count());
  EXPECT_EQ(loaded.checkin_count(), world.dataset.checkin_count());
  EXPECT_EQ(loaded.friendships().edge_count(),
            world.dataset.friendships().edge_count());
  // Trajectory sizes survive the round trip.
  for (UserId u = 0; u < loaded.user_count(); ++u)
    EXPECT_EQ(loaded.checkin_count(u), world.dataset.checkin_count(u));
}

TEST(Loader, MinCheckinsFilterDropsSparseUsers) {
  const std::string dir = testing::TempDir() + "/fs_loader_filter";
  std::filesystem::create_directories(dir);
  {
    std::ofstream checkins(dir + "/checkins.txt");
    checkins << "100\t1970-01-01T00:00:00Z\t1.0\t2.0\t7\n";
    checkins << "100\t1970-01-02T00:00:00Z\t1.0\t2.0\t7\n";
    checkins << "200\t1970-01-01T00:00:00Z\t3.0\t4.0\t8\n";  // only once
    std::ofstream edges(dir + "/edges.txt");
    edges << "100\t200\n";
  }
  const Dataset ds =
      load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt");
  EXPECT_EQ(ds.user_count(), 1u);  // user 200 dropped
  EXPECT_EQ(ds.checkin_count(), 2u);
  EXPECT_EQ(ds.friendships().edge_count(), 0u);  // edge endpoint dropped
}

TEST(Loader, RoundTripPreservesCoordinates) {
  // %.7f output keeps ~1 cm of latitude; the reloaded coordinates must
  // agree to within half an ulp of that last printed digit.
  const SyntheticWorld world = generate_world(tiny_world_config());
  const std::string dir = testing::TempDir() + "/fs_loader_coords";
  std::filesystem::create_directories(dir);
  save_checkins_snap(world.dataset, dir + "/checkins.txt",
                     dir + "/edges.txt");
  const Dataset loaded =
      load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt");
  ASSERT_EQ(loaded.user_count(), world.dataset.user_count());
  for (UserId u = 0; u < loaded.user_count(); ++u) {
    const auto before = world.dataset.trajectory(u);
    const auto after = loaded.trajectory(u);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      // The saver rebases times onto its fake 2010-01-01 date range
      // (epoch day 14610); the offset is constant so ordering and gaps
      // survive exactly.
      EXPECT_EQ(before[i].time + 14610LL * geo::kSecondsPerDay,
                after[i].time);
      EXPECT_NEAR(before[i].location.lat, after[i].location.lat, 5e-8);
      EXPECT_NEAR(before[i].location.lng, after[i].location.lng, 5e-8);
    }
  }
}

TEST(Loader, FilteredUsersLeaveNoPoiResidue) {
  const std::string dir = testing::TempDir() + "/fs_loader_residue";
  std::filesystem::create_directories(dir);
  {
    std::ofstream checkins(dir + "/checkins.txt");
    checkins << "100\t1970-01-01T00:00:00Z\t1.0\t2.0\t7\n";
    checkins << "100\t1970-01-02T00:00:00Z\t1.0\t2.0\t7\n";
    // User 200 falls below the activity floor; POI 8 is visited only by
    // them and must not be interned.
    checkins << "200\t1970-01-01T00:00:00Z\t3.0\t4.0\t8\n";
    std::ofstream edges(dir + "/edges.txt");
    edges << "100\t200\n";
  }
  const Dataset ds =
      load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt");
  EXPECT_EQ(ds.user_count(), 1u);
  EXPECT_EQ(ds.poi_count(), 1u);
}

TEST(Loader, MissingFileThrows) {
  EXPECT_THROW(load_checkins_snap("/nonexistent/a", "/nonexistent/b"),
               IoError);
  // A missing edge file also surfaces as IoError, after the check-in
  // passes succeeded.
  const std::string dir = testing::TempDir() + "/fs_loader_noedges";
  std::filesystem::create_directories(dir);
  {
    std::ofstream checkins(dir + "/checkins.txt");
    checkins << "1\t1970-01-01T00:00:00Z\t1.0\t2.0\t7\n";
    checkins << "1\t1970-01-02T00:00:00Z\t1.0\t2.0\t7\n";
  }
  EXPECT_THROW(
      load_checkins_snap(dir + "/checkins.txt", dir + "/missing.txt"),
      IoError);
}

void write_messy_world(const std::string& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream checkins(dir + "/checkins.txt");
  checkins << "100\t1970-01-01T00:00:00Z\t1.0\t2.0\t7\n";
  checkins << "100\t1970-01-02T00:00:00Z\t1.0\t2.0\t7\n";
  checkins << "300\n";                                           // short
  checkins << "300\t1970-02-31T00:00:00Z\t1.0\t2.0\t7\n";        // bad date
  checkins << "300\t1970-01-01T00:00:00Z\tabc\t2.0\t7\n";        // bad num
  checkins << "300\t1970-01-01T00:00:00Z\t95.0\t2.0\t7\n";       // range
  checkins << "300\t1970-01-03T00:00:00Z\t1.5\t2.5\t9\n";
  checkins << "300\t1970-01-04T00:00:00Z\t1.5\t2.5\t9\n";
  std::ofstream edges(dir + "/edges.txt");
  edges << "100\t300\n";
  edges << "100\n";         // short
  edges << "100\txyz\n";    // bad number
}

TEST(Loader, StrictModeThrowsOnFirstBadLine) {
  const std::string dir = testing::TempDir() + "/fs_loader_strict";
  write_messy_world(dir);
  LoadOptions options;
  options.strictness = Strictness::kStrict;
  EXPECT_THROW(load_checkins_snap(dir + "/checkins.txt", dir + "/edges.txt",
                                  options),
               ParseError);
}

TEST(Loader, PermissiveModeQuarantinesAndCounts) {
  const std::string dir = testing::TempDir() + "/fs_loader_permissive";
  write_messy_world(dir);
  LoadOptions options;
  options.strictness = Strictness::kPermissive;
  LoadReport report;
  const Dataset ds = load_checkins_snap(dir + "/checkins.txt",
                                        dir + "/edges.txt", options, &report);
  EXPECT_EQ(ds.user_count(), 2u);
  EXPECT_EQ(ds.checkin_count(), 4u);
  EXPECT_EQ(ds.friendships().edge_count(), 1u);

  EXPECT_EQ(report.checkin_lines, 8u);
  EXPECT_EQ(report.accepted_checkins, 4u);
  EXPECT_EQ(report.short_lines, 1u);
  EXPECT_EQ(report.bad_timestamps, 1u);
  EXPECT_EQ(report.bad_numbers, 1u);
  EXPECT_EQ(report.out_of_range_coords, 1u);
  EXPECT_EQ(report.quarantined_checkins(), 4u);

  EXPECT_EQ(report.edge_lines, 3u);
  EXPECT_EQ(report.accepted_edges, 1u);
  EXPECT_EQ(report.short_edge_lines, 1u);
  EXPECT_EQ(report.bad_edge_numbers, 1u);
  EXPECT_EQ(report.quarantined_edges(), 2u);

  EXPECT_FALSE(report.sample_bad_lines.empty());
  EXPECT_FALSE(report.summary().empty());
}

}  // namespace
}  // namespace fs::data
