#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/runtime.h"

namespace fs::obs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

// ---------- json ----------

TEST(Json, DumpParseRoundTrip) {
  json::Object obj;
  obj["name"] = "needs \"escaping\"\nand\ttabs \\ backslash";
  obj["count"] = 42;
  obj["ratio"] = 0.25;
  obj["flag"] = true;
  obj["nothing"] = nullptr;
  json::Array arr;
  arr.emplace_back(1);
  arr.emplace_back("two");
  obj["list"] = std::move(arr);

  for (int indent : {0, 2}) {
    const json::Value parsed =
        json::parse(json::Value(obj).dump(indent));
    EXPECT_EQ(parsed.at("name").as_string(),
              "needs \"escaping\"\nand\ttabs \\ backslash");
    EXPECT_EQ(parsed.at("count").as_number(), 42.0);
    EXPECT_EQ(parsed.at("ratio").as_number(), 0.25);
    EXPECT_TRUE(parsed.at("flag").as_bool());
    EXPECT_TRUE(parsed.at("nothing").is_null());
    EXPECT_EQ(parsed.at("list").as_array().size(), 2u);
    EXPECT_EQ(parsed.at("list").as_array()[1].as_string(), "two");
  }
}

TEST(Json, IntegersPrintExactlyAndNonFiniteBecomesNull) {
  EXPECT_EQ(json::Value(1234567890123).dump(), "1234567890123");
  EXPECT_EQ(json::Value(-7).dump(), "-7");
  EXPECT_EQ(json::Value(std::nan("")).dump(), "null");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(json::Value(inf).dump(), "null");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{\"a\": }"), ParseError);
  EXPECT_THROW(json::parse("[1, 2"), ParseError);
  EXPECT_THROW(json::parse("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(json::parse(""), ParseError);
  // Type-mismatch accessors throw instead of crashing.
  EXPECT_THROW(json::parse("[1]").at("key"), ParseError);
  EXPECT_THROW(json::parse("\"s\"").as_number(), ParseError);
}

TEST(Json, UnicodeEscapeDecodes) {
  EXPECT_EQ(json::parse("\"caf\\u00e9\"").as_string(), "caf\xc3\xa9");
}

// ---------- histogram ----------

TEST(Histogram, BucketsAndCumulativeCounts) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // three finite bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 40.0});
  // 100 observations uniformly inside (10, 20]: the bucket holds all mass,
  // so p50 lands mid-bucket and p95 near its top.
  for (int i = 0; i < 100; ++i) h.observe(15.0);
  EXPECT_NEAR(h.quantile(0.5), 15.0, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 19.5, 1.0);
  EXPECT_GT(h.quantile(0.99), h.quantile(0.5));
}

TEST(Histogram, OverflowClampsToLargestFiniteBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, EmptyQuantileIsZeroAndBadBoundsThrow) {
  Histogram h({1.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

// ---------- registry ----------

TEST(MetricsRegistry, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ResolveReturnsSameInstancePerNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.total", {{"kind", "a"}});
  Counter& b = reg.counter("x.total", {{"kind", "b"}});
  EXPECT_NE(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x.total", {{"kind", "a"}}).value(), 3u);
  EXPECT_EQ(reg.counter("x.total", {{"kind", "b"}}).value(), 0u);
  Gauge& g = reg.gauge("x.level");
  g.set(2.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 2.0);
  g.set_max(5.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 5.0);
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("data.loader.lines_total", {}, "lines read").add(12);
  reg.counter("data.loader.quarantined_total",
              {{"reason", "bad \"stuff\"\nhere\\"}})
      .add(1);
  reg.gauge("pipeline.edge_churn", {}, "latest churn").set(0.25);
  Histogram& h = reg.histogram("span.test_ms", {1.0, 2.0}, {}, "test spans");
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP data_loader_lines_total lines read"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE data_loader_lines_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("data_loader_lines_total 12"), std::string::npos);
  // Label values escape backslash, quote, and newline.
  EXPECT_NE(text.find("data_loader_quarantined_total{reason=\"bad "
                      "\\\"stuff\\\"\\nhere\\\\\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pipeline_edge_churn 0.25"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("span_test_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("span_test_ms_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("span_test_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("span_test_ms_count 2"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusNameAndEscapeHelpers) {
  EXPECT_EQ(prometheus_name("data.loader.lines_total"),
            "data_loader_lines_total");
  EXPECT_EQ(prometheus_name("weird-name! with spaces"),
            "weird_name__with_spaces");
  EXPECT_EQ(prometheus_name("9starts.with.digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(prometheus_escape_help("line\nbreak\\slash"),
            "line\\nbreak\\\\slash");
}

TEST(MetricsRegistry, JsonSnapshotCarriesQuantiles) {
  MetricsRegistry reg;
  reg.counter("a.total", {{"k", "v"}}, "help a").add(7);
  reg.gauge("b.level").set(-1.5);
  Histogram& h = reg.histogram("c_ms", {1.0, 10.0, 100.0});
  for (int i = 0; i < 50; ++i) h.observe(5.0);

  const json::Value snap = json::parse(reg.to_json().dump());
  const json::Array& counters = snap.at("counters").as_array();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].at("name").as_string(), "a.total");
  EXPECT_EQ(counters[0].at("value").as_number(), 7.0);
  EXPECT_EQ(counters[0].at("labels").at("k").as_string(), "v");
  EXPECT_EQ(snap.at("gauges").as_array()[0].at("value").as_number(), -1.5);
  const json::Value& hist = snap.at("histograms").as_array()[0];
  EXPECT_EQ(hist.at("count").as_number(), 50.0);
  const json::Value& quantiles = hist.at("quantiles");
  EXPECT_GT(quantiles.at("p50").as_number(), 1.0);
  EXPECT_LE(quantiles.at("p50").as_number(), 10.0);
  EXPECT_GE(quantiles.at("p99").as_number(),
            quantiles.at("p50").as_number());
}

// ---------- spans & tracer ----------

/// The global tracer is shared across tests; serialize access by clearing
/// state on entry and disabling on exit.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().disable();
    tracer().clear();
  }
  void TearDown() override {
    tracer().disable();
    tracer().clear();
    set_metrics_enabled(false);
  }
};

TEST_F(TracerTest, DisabledSpansRecordNothingButStillTime) {
  Span sw("obs.test.stopwatch");
  EXPECT_GE(sw.seconds(), 0.0);
  const double t1 = sw.seconds();
  EXPECT_GE(sw.seconds(), t1);
  { FS_SPAN("obs.test.scope"); }
  EXPECT_EQ(tracer().event_count(), 0u);
}

TEST_F(TracerTest, SpansNestAndRecordContainedIntervals) {
  tracer().enable();
  {
    Span outer("obs.test.outer");
    {
      Span inner("obs.test.inner");
      inner.arg("answer", 42.0);
    }
  }
  const std::vector<TraceEvent> events = tracer().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner ends first, so it is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "obs.test.inner");
  EXPECT_EQ(outer.name, "obs.test.outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  // The child interval is contained in the parent's.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1.0);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].first, "answer");
  EXPECT_DOUBLE_EQ(inner.args[0].second, 42.0);
}

TEST_F(TracerTest, EndIsIdempotentAndAggregateRollsUp) {
  tracer().enable();
  {
    Span s("obs.test.once");
    s.end();
    s.end();  // second end must not double-record
  }
  { FS_SPAN("obs.test.once"); }
  const auto agg = tracer().aggregate();
  const auto it = agg.find("obs.test.once");
  ASSERT_NE(it, agg.end());
  EXPECT_EQ(it->second.count, 2u);
  EXPECT_GE(it->second.wall_ms, 0.0);
}

TEST_F(TracerTest, ChromeTraceJsonIsWellFormed) {
  tracer().enable();
  {
    Span s("obs.test.chrome");
    s.arg("x", 1.5);
  }
  tracer().counter("obs.test.series", 3.0);
  const std::string path = temp_path("obs_test_trace.json");
  tracer().write_chrome_json(path);

  const json::Value doc = json::parse(slurp(path));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const json::Array& events = doc.at("traceEvents").as_array();
  // Metadata + span + counter at minimum.
  ASSERT_GE(events.size(), 3u);
  bool saw_span = false, saw_counter = false, saw_meta = false;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X" && e.at("name").as_string() == "obs.test.chrome") {
      saw_span = true;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("x").as_number(), 1.5);
    }
    if (ph == "C" && e.at("name").as_string() == "obs.test.series") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("value").as_number(), 3.0);
    }
    if (ph == "M") saw_meta = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_meta);
  std::filesystem::remove(path);
}

TEST_F(TracerTest, SpanDurationsMirrorIntoHistogramsWhenMetricsEnabled) {
  set_metrics_enabled(true);
  // Tracer stays disabled: metrics-only runs must still get span timings.
  { FS_SPAN("obs.test.mirror"); }
  const json::Value snap = json::parse(metrics().to_json().dump());
  bool found = false;
  for (const json::Value& h : snap.at("histograms").as_array())
    if (h.at("name").as_string() == "span.obs.test.mirror_ms") {
      found = true;
      EXPECT_GE(h.at("count").as_number(), 1.0);
    }
  EXPECT_TRUE(found);
}

// ---------- telemetry glue ----------

TEST(Telemetry, PrometheusPathFor) {
  EXPECT_EQ(prometheus_path_for("m.json"), "m.prom");
  EXPECT_EQ(prometheus_path_for("/tmp/run.v2/metrics.json"),
            "/tmp/run.v2/metrics.prom");
  EXPECT_EQ(prometheus_path_for("/tmp/run.v2/metrics"),
            "/tmp/run.v2/metrics.prom");
  EXPECT_EQ(prometheus_path_for("metrics"), "metrics.prom");
}

TEST(Telemetry, WriteMetricsFilesProducesParseableTwins) {
  MetricsRegistry reg;
  reg.counter("t.total", {}, "test").add(5);
  const std::string json_path = temp_path("obs_test_metrics.json");
  write_metrics_files(reg, json_path);
  const json::Value snap = json::parse(slurp(json_path));
  EXPECT_EQ(snap.at("counters").as_array()[0].at("value").as_number(), 5.0);
  const std::string prom = slurp(prometheus_path_for(json_path));
  EXPECT_NE(prom.find("t_total 5"), std::string::npos);
  std::filesystem::remove(json_path);
  std::filesystem::remove(prometheus_path_for(json_path));
}

TEST(Telemetry, BridgesMirrorRuntimeSinks) {
  MetricsRegistry reg;
  util::Diagnostics diag;
  diag.report(util::Severity::kWarning, ErrorCode::kIo, "test", "warn 1");
  diag.report(util::Severity::kError, ErrorCode::kNumeric, "test", "err 1");
  bridge_diagnostics(diag, reg);
  EXPECT_DOUBLE_EQ(reg.gauge("diagnostics.events_total").value(), 2.0);
  EXPECT_DOUBLE_EQ(
      reg.gauge("diagnostics.events", {{"severity", "warning"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      reg.gauge("diagnostics.events", {{"severity", "error"}}).value(), 1.0);

  runtime::ExecutionContext ctx;
  {
    runtime::MemoryCharge charge(&ctx, 1024, "test");
    bridge_execution(ctx, reg);
  }
  EXPECT_DOUBLE_EQ(reg.gauge("runtime.memory.peak_bytes").value(), 1024.0);
  EXPECT_DOUBLE_EQ(reg.gauge("runtime.deadline.remaining_seconds").value(),
                   -1.0);

  runtime::DegradationReport report;
  report.add("phase2.refine", "deadline", "ran out", 3, 6);
  bridge_degradation(report, reg);
  EXPECT_DOUBLE_EQ(reg.gauge("pipeline.degraded_phases").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      reg.gauge("pipeline.degradations", {{"reason", "deadline"}}).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      reg.gauge("pipeline.degradations", {{"reason", "memory"}}).value(),
      0.0);
}

TEST(Telemetry, PeriodicSnapshotWriterWritesOnStop) {
  MetricsRegistry reg;
  reg.counter("p.total").add(9);
  const std::string json_path = temp_path("obs_test_periodic.json");
  {
    PeriodicSnapshotWriter writer(json_path, 0.05, reg);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    writer.stop();
    writer.stop();  // idempotent
  }
  const json::Value snap = json::parse(slurp(json_path));
  EXPECT_EQ(snap.at("counters").as_array()[0].at("value").as_number(), 9.0);
  std::filesystem::remove(json_path);
  std::filesystem::remove(prometheus_path_for(json_path));
}

TEST(Telemetry, DiagnosticsCarryMonotonicTimestamps) {
  util::Diagnostics diag;
  diag.report(util::Severity::kInfo, ErrorCode::kIo, "test", "first");
  ASSERT_EQ(diag.entries().size(), 1u);
  EXPECT_GE(diag.entries()[0].ts_sec, 0.0);
  EXPECT_LE(diag.entries()[0].ts_sec, util::monotonic_seconds());
  // to_string prefixes the stamp.
  EXPECT_NE(diag.to_string().find("s] [info]"), std::string::npos);
}

}  // namespace
}  // namespace fs::obs
