#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/supervised_autoencoder.h"

namespace fs::nn {
namespace {

// ---------- Matrix ----------

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2);
  Matrix c(1, 1);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Matrix, MatmulNN) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul_nn(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
  const Matrix bad(3, 3);
  EXPECT_THROW(matmul_nn(a, bad), std::invalid_argument);
}

TEST(Matrix, MatmulNT) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});
  const Matrix b = Matrix::from_rows({{4, 5, 6}, {7, 8, 9}});
  const Matrix c = matmul_nt(a, b);  // (1x3) * (2x3)^T -> 1x2
  EXPECT_DOUBLE_EQ(c(0, 0), 32);
  EXPECT_DOUBLE_EQ(c(0, 1), 50);
}

TEST(Matrix, MatmulTN) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5}, {6}});
  const Matrix c = matmul_tn(a, b);  // (2x2)^T * (2x1) -> 2x1
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 5 + 3 * 6);
  EXPECT_DOUBLE_EQ(c(1, 0), 2 * 5 + 4 * 6);
}

TEST(Matrix, TransposedProductsAgree) {
  util::Rng rng(7);
  Matrix a(4, 6), b(6, 3);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = rng.normal();
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = rng.normal();
  // a * b == matmul_nt(a, b^T) == matmul_tn(a^T, b).
  Matrix bt(3, 6), at(6, 4);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 3; ++c) bt(c, r) = b(r, c);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c) at(c, r) = a(r, c);
  const Matrix direct = matmul_nn(a, b);
  const Matrix via_nt = matmul_nt(a, bt);
  const Matrix via_tn = matmul_tn(at, b);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(direct(r, c), via_nt(r, c), 1e-12);
      EXPECT_NEAR(direct(r, c), via_tn(r, c), 1e-12);
    }
}

TEST(Matrix, GatherRows) {
  const Matrix m = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  const Matrix g = m.gather_rows({2, 0});
  EXPECT_DOUBLE_EQ(g(0, 0), 3);
  EXPECT_DOUBLE_EQ(g(1, 0), 1);
}

TEST(Matrix, SquaredDifference) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3, 0}});
  EXPECT_DOUBLE_EQ(Matrix::squared_difference(a, b), 8.0);
  const Matrix c(2, 2);
  EXPECT_THROW(Matrix::squared_difference(a, c), std::invalid_argument);
}

TEST(Matrix, HeInitScalesWithFanIn) {
  util::Rng rng(11);
  const Matrix m = Matrix::he_init(50, 200, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) sq += m.data()[i] * m.data()[i];
  const double stddev = std::sqrt(sq / static_cast<double>(m.size()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 200.0), 0.01);
}

// ---------- activations ----------

TEST(Activations, Values) {
  EXPECT_DOUBLE_EQ(activate(Activation::kIdentity, -3.0), -3.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(activate(Activation::kRelu, 3.0), 3.0);
  EXPECT_NEAR(activate(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(activate(Activation::kTanh, 100.0), 1.0, 1e-9);
}

// ---------- Dense gradient checking ----------

/// Numerical-vs-analytic gradient check on a single Dense layer with a
/// quadratic loss L = sum((y - target)^2).
class DenseGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(DenseGradCheck, BackwardMatchesFiniteDifference) {
  util::Rng rng(13);
  Dense layer(4, 3, GetParam(), rng);
  Matrix x(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  Matrix target(2, 3);
  for (std::size_t i = 0; i < target.size(); ++i)
    target.data()[i] = rng.normal();

  auto loss_fn = [&]() {
    const Matrix y = layer.infer(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      const double d = y.data()[i] - target.data()[i];
      loss += d * d;
    }
    return loss;
  };

  // Analytic input gradient.
  Matrix y = layer.forward(x);
  Matrix d_out = y;
  d_out -= target;
  d_out *= 2.0;
  const Matrix d_in = layer.backward(d_out);
  layer.clear_gradients();

  // Finite differences on a few input coordinates.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); i += 3) {
    const double orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double plus = loss_fn();
    x.data()[i] = orig - eps;
    const double minus = loss_fn();
    x.data()[i] = orig;
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(d_in.data()[i], numeric, 1e-4)
        << "input gradient mismatch at " << i;
  }

  // Finite differences on a few weights, against the accumulated gradient.
  layer.forward(x);
  layer.backward(d_out);
  // Re-derive the analytic weight gradient by probing apply_gradients with
  // a copy: instead, recompute numerically and compare with accumulated
  // grads via a unit learning-rate trick.
  Dense probe = layer;
  probe.apply_gradients(1.0);  // weights' -= grad
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t r = i % 3;
    const std::size_t c = (2 * i) % 4;
    const double analytic =
        layer.weights()(r, c) - probe.weights()(r, c);
    Dense shifted = layer;
    shifted.mutable_weights()(r, c) += eps;
    double plus = 0.0, minus = 0.0;
    {
      const Matrix yy = shifted.infer(x);
      for (std::size_t j = 0; j < yy.size(); ++j) {
        const double d = yy.data()[j] - target.data()[j];
        plus += d * d;
      }
    }
    shifted.mutable_weights()(r, c) -= 2 * eps;
    {
      const Matrix yy = shifted.infer(x);
      for (std::size_t j = 0; j < yy.size(); ++j) {
        const double d = yy.data()[j] - target.data()[j];
        minus += d * d;
      }
    }
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic, numeric, 1e-4)
        << "weight gradient mismatch at (" << r << "," << c << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, DenseGradCheck,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kTanh,
                                           Activation::kSigmoid));

TEST(Dense, BackwardWithoutForwardThrows) {
  util::Rng rng(17);
  Dense layer(2, 2, Activation::kIdentity, rng);
  Matrix d(1, 2);
  EXPECT_THROW(layer.backward(d), std::logic_error);
}

TEST(Dense, RejectsZeroDims) {
  util::Rng rng(19);
  EXPECT_THROW(Dense(0, 2, Activation::kRelu, rng), std::invalid_argument);
}

// ---------- Mlp ----------

TEST(Mlp, ShapesAndInferForwardAgree) {
  util::Rng rng(23);
  Mlp mlp({5, 8, 2}, Activation::kRelu, Activation::kIdentity, rng);
  EXPECT_EQ(mlp.layer_count(), 2u);
  EXPECT_EQ(mlp.in_dim(), 5u);
  EXPECT_EQ(mlp.out_dim(), 2u);
  Matrix x(3, 5);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();
  const Matrix y1 = mlp.forward(x);
  const Matrix y2 = mlp.infer(x);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_DOUBLE_EQ(y1.data()[i], y2.data()[i]);
}

TEST(Mlp, LearnsLinearMap) {
  // y = 2x - 1 learned by a 1-16-1 network from noise-free samples.
  util::Rng rng(29);
  Mlp mlp({1, 16, 1}, Activation::kTanh, Activation::kIdentity, rng);
  Matrix x(64, 1), target(64, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    target(i, 0) = 2.0 * x(i, 0) - 1.0;
  }
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    Matrix y = mlp.forward(x);
    Matrix d = y;
    d -= target;
    const double loss = Matrix::squared_difference(y, target) / 64.0;
    if (epoch == 0) first_loss = loss;
    last_loss = loss;
    d *= 2.0 / 64.0;
    mlp.backward(d);
    mlp.apply_gradients(0.05);
  }
  EXPECT_LT(last_loss, first_loss * 0.05);
}

TEST(Mlp, RequiresTwoDims) {
  util::Rng rng(31);
  EXPECT_THROW(Mlp({5}, Activation::kRelu, Activation::kIdentity, rng),
               std::invalid_argument);
}

// ---------- SupervisedAutoencoder ----------

AutoencoderConfig small_ae_config() {
  AutoencoderConfig cfg;
  cfg.encoder_dims = {12, 6, 3};
  cfg.classifier_hidden = {8};
  cfg.epochs = 40;
  cfg.batch_size = 8;
  cfg.learning_rate = 0.01;
  cfg.seed = 37;
  return cfg;
}

/// Two Gaussian blobs in 12-d with disjoint support patterns.
void make_blobs(Matrix& x, std::vector<int>& y, std::size_t n,
                util::Rng& rng) {
  x = Matrix(n, 12);
  y.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    y[i] = label;
    for (std::size_t c = 0; c < 12; ++c) {
      const double base = (label == 1 && c < 6) ? 2.0
                          : (label == 0 && c >= 6) ? 2.0
                                                   : 0.0;
      x(i, c) = base + rng.normal(0.0, 0.3);
    }
  }
}

TEST(SupervisedAutoencoder, ReconstructionLossDecreases) {
  util::Rng rng(41);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 64, rng);
  SupervisedAutoencoder ae(small_ae_config());
  const auto history = ae.train(x, y);
  ASSERT_FALSE(history.empty());
  EXPECT_LT(history.back().reconstruction_loss,
            history.front().reconstruction_loss * 0.8);
}

TEST(SupervisedAutoencoder, ClassifierLearnsBlobs) {
  util::Rng rng(43);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 64, rng);
  SupervisedAutoencoder ae(small_ae_config());
  ae.train(x, y);
  Matrix test_x;
  std::vector<int> test_y;
  make_blobs(test_x, test_y, 32, rng);
  const auto probs = ae.predict_proba(test_x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probs.size(); ++i)
    correct += (probs[i] >= 0.5) == (test_y[i] == 1);
  EXPECT_GT(correct, 28u);  // ~90 %+
}

TEST(SupervisedAutoencoder, CodeHasRequestedDimension) {
  util::Rng rng(47);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 32, rng);
  SupervisedAutoencoder ae(small_ae_config());
  ae.train(x, y);
  const Matrix code = ae.encode(x);
  EXPECT_EQ(code.rows(), 32u);
  EXPECT_EQ(code.cols(), 3u);
  const Matrix recon = ae.reconstruct(x);
  EXPECT_EQ(recon.cols(), 12u);
}

TEST(SupervisedAutoencoder, SupervisionImprovesCodeSeparability) {
  // With alpha > 0 the code should separate the classes better than the
  // pure autoencoder (alpha = 0). Measured by the distance between class
  // centroids over mean intra-class spread.
  util::Rng rng(53);
  Matrix x;
  std::vector<int> y;
  // Classes differ in a LOW-variance direction that pure reconstruction
  // tends to drop: class signal lives in 2 of 12 dims at small amplitude,
  // while 10 dims carry shared high-variance structure.
  x = Matrix(96, 12);
  y.assign(96, 0);
  for (std::size_t i = 0; i < 96; ++i) {
    const int label = static_cast<int>(i % 2);
    y[i] = label;
    const double shared = rng.normal(0.0, 2.0);
    for (std::size_t c = 0; c < 10; ++c)
      x(i, c) = shared + rng.normal(0.0, 0.5);
    for (std::size_t c = 10; c < 12; ++c)
      x(i, c) = (label ? 0.6 : -0.6) + rng.normal(0.0, 0.2);
  }

  auto separability = [&](double alpha) {
    AutoencoderConfig cfg = small_ae_config();
    cfg.alpha = alpha;
    cfg.epochs = 60;
    SupervisedAutoencoder ae(cfg);
    ae.train(x, y);
    const Matrix code = ae.encode(x);
    std::vector<double> mean0(code.cols(), 0.0), mean1(code.cols(), 0.0);
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < code.rows(); ++i) {
      auto& mean = y[i] ? mean1 : mean0;
      (y[i] ? n1 : n0)++;
      for (std::size_t c = 0; c < code.cols(); ++c) mean[c] += code(i, c);
    }
    for (std::size_t c = 0; c < code.cols(); ++c) {
      mean0[c] /= static_cast<double>(n0);
      mean1[c] /= static_cast<double>(n1);
    }
    double between = 0.0, within = 0.0;
    for (std::size_t c = 0; c < code.cols(); ++c) {
      const double d = mean1[c] - mean0[c];
      between += d * d;
    }
    for (std::size_t i = 0; i < code.rows(); ++i) {
      const auto& mean = y[i] ? mean1 : mean0;
      for (std::size_t c = 0; c < code.cols(); ++c) {
        const double d = code(i, c) - mean[c];
        within += d * d;
      }
    }
    return between / (within / static_cast<double>(code.rows()) + 1e-12);
  };

  EXPECT_GT(separability(1.0), separability(0.0));
}

TEST(SupervisedAutoencoder, ValidatesInputs) {
  SupervisedAutoencoder ae(small_ae_config());
  Matrix x(4, 12);
  EXPECT_THROW(ae.train(x, {0, 1}), std::invalid_argument);
  Matrix wrong_width(4, 5);
  EXPECT_THROW(ae.train(wrong_width, {0, 1, 0, 1}), std::invalid_argument);
  AutoencoderConfig bad;
  bad.encoder_dims = {12};
  EXPECT_THROW(SupervisedAutoencoder{bad}, std::invalid_argument);
}

TEST(SupervisedAutoencoder, DeterministicGivenSeed) {
  util::Rng rng(59);
  Matrix x;
  std::vector<int> y;
  make_blobs(x, y, 32, rng);
  SupervisedAutoencoder a(small_ae_config());
  SupervisedAutoencoder b(small_ae_config());
  a.train(x, y);
  b.train(x, y);
  const auto pa = a.predict_proba(x);
  const auto pb = b.predict_proba(x);
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace fs::nn
