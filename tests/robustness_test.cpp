// Failure-injection and edge-case tests: degenerate datasets, silent users,
// pathological graphs, malformed inputs. The attack stack must either
// handle these gracefully or fail loudly — never quietly corrupt results.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/joc.h"
#include "core/pipeline.h"
#include "data/obfuscation.h"
#include "data/synthetic.h"
#include "embed/skipgram.h"
#include "eval/pairs.h"
#include "geo/quadtree.h"
#include "graph/khop.h"
#include "ml/metrics.h"
#include "ml/svm.h"
#include "util/binary_io.h"

namespace fs {
namespace {

// ---------- silent users ----------

data::Dataset dataset_with_silent_users() {
  // Users 0 and 1 are active; users 2 and 3 never check in (the paper
  // filters them, but the library must not crash if they appear).
  std::vector<data::Poi> pois{{{0.1, 0.1}, 0}, {{0.9, 0.9}, 1}};
  std::vector<data::CheckIn> checkins{
      {0, 0, 100, {0.1, 0.1}},
      {0, 1, 5000, {0.9, 0.9}},
      {1, 0, 200, {0.1, 0.1}},
      {1, 0, 9000, {0.1, 0.1}},
  };
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  return data::Dataset::build(4, std::move(pois), std::move(checkins),
                              std::move(g));
}

TEST(Robustness, SilentUsersHaveEmptyTrajectories) {
  const data::Dataset ds = dataset_with_silent_users();
  EXPECT_EQ(ds.checkin_count(2), 0u);
  EXPECT_TRUE(ds.visited_pois(3).empty());
  EXPECT_EQ(ds.common_poi_count(2, 3), 0u);
}

TEST(Robustness, JocForSilentPairIsAllZero) {
  const data::Dataset ds = dataset_with_silent_users();
  const geo::QuadtreeDivision division(ds.poi_coordinates(), 1);
  const geo::QuadtreeDivisionView view(division);
  const geo::TimeSlotting slots(ds.window_begin(), ds.window_end(), 1000);
  const core::OccupancyIndex index(ds, view, slots);
  std::vector<double> joc(index.joc_dim());
  core::build_joc(index, 2, 3, joc.data());
  for (double v : joc) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Robustness, HidingNeverRemovesLastCheckin) {
  // A dataset where every user has exactly one check-in: hiding at any
  // ratio must be a no-op.
  std::vector<data::Poi> pois{{{0.0, 0.0}, 0}};
  std::vector<data::CheckIn> checkins;
  for (data::UserId u = 0; u < 10; ++u)
    checkins.push_back({u, 0, static_cast<geo::Timestamp>(u), {0.0, 0.0}});
  graph::Graph g(10);
  const auto ds =
      data::Dataset::build(10, std::move(pois), std::move(checkins), g);
  util::Rng rng(3);
  const data::Dataset hidden = data::hide_checkins(ds, 0.5, rng);
  EXPECT_EQ(hidden.checkin_count(), 10u);
}

// ---------- pathological geometry ----------

TEST(Robustness, QuadtreeHandlesCollinearAndDuplicatePois) {
  std::vector<geo::LatLng> pois;
  for (int i = 0; i < 50; ++i) pois.push_back({1.0, 2.0});       // duplicates
  for (int i = 0; i < 50; ++i)
    pois.push_back({1.0, 2.0 + i * 1e-4});                       // collinear
  const geo::QuadtreeDivision division(pois, 10);
  for (const auto& p : pois)
    EXPECT_LT(division.cell_of(p), division.cell_count());
}

TEST(Robustness, SingleTimeSlot) {
  const geo::TimeSlotting slots(0, 100, 1000);  // tau > window
  EXPECT_EQ(slots.slot_count(), 1u);
  EXPECT_EQ(slots.slot_of(99), 0u);
}

// ---------- pathological graphs ----------

TEST(Robustness, KHopOnEdgelessGraph) {
  graph::Graph g(10);
  const auto sub = graph::extract_khop_subgraph(g, 0, 9);
  EXPECT_TRUE(sub.empty());
  EXPECT_TRUE(sub.edges().empty());
}

TEST(Robustness, KHopOnStarGraph) {
  // Star: all leaves connect only through the hub. Exactly one 2-path
  // between any two leaves; no longer paths after the hub is consumed.
  graph::Graph g(8);
  for (graph::NodeId v = 1; v < 8; ++v) g.add_edge(0, v);
  graph::KHopOptions options;
  options.k = 5;
  const auto sub = graph::extract_khop_subgraph(g, 1, 7, options);
  EXPECT_EQ(sub.path_count_of_length(2), 1u);
  EXPECT_EQ(sub.path_count(), 1u);
}

TEST(Robustness, KHopCompleteGraphRespectsTheorem) {
  // K6: many short paths; after 2-paths consume all interior vertices no
  // 3-paths can remain.
  graph::Graph g(6);
  for (graph::NodeId a = 0; a < 6; ++a)
    for (graph::NodeId b = a + 1; b < 6; ++b) g.add_edge(a, b);
  const auto sub = graph::extract_khop_subgraph(g, 0, 5);
  EXPECT_EQ(sub.path_count_of_length(2), 4u);  // via each of 1..4
  EXPECT_EQ(sub.path_count_of_length(3), 0u);
}

// ---------- degenerate learning inputs ----------

TEST(Robustness, SvmSurvivesContradictoryLabels) {
  // Identical points with opposite labels: no separator exists; training
  // must terminate and produce a usable (if trivial) classifier.
  nn::Matrix x(20, 2);
  std::vector<int> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = -1.0;
    y[i] = static_cast<int>(i % 2);
  }
  ml::SvmClassifier svm;
  svm.fit(x, y);
  EXPECT_TRUE(svm.trained());
  const auto pred = svm.predict(x);
  EXPECT_EQ(pred.size(), 20u);
}

TEST(Robustness, ThresholdTuningOnConstantScores) {
  // All scores identical: the only operating points are all-positive or
  // all-negative; tuner must pick all-positive (nonzero F1) and not crash.
  const auto tuned =
      ml::tune_f1_threshold({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(tuned.threshold, 0.5);
  EXPECT_NEAR(tuned.train_f1, 2.0 / 3.0, 1e-12);  // P=0.5, R=1
}

TEST(Robustness, SkipGramWithDegenerateWalks) {
  // Single-token walks provide no context pairs; training must still
  // return a well-formed embedding.
  const std::vector<std::vector<embed::VocabId>> corpus{{0}, {1}, {2}};
  embed::SkipGramConfig cfg;
  cfg.dim = 4;
  const nn::Matrix emb = embed::train_skipgram(corpus, 3, cfg);
  EXPECT_EQ(emb.rows(), 3u);
  for (std::size_t i = 0; i < emb.size(); ++i)
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
}

// ---------- malformed external input ----------

TEST(Robustness, BinaryReaderRejectsGarbage) {
  std::stringstream stream("garbage-bytes-here");
  util::BinaryReader reader(stream);
  EXPECT_THROW(reader.expect_tag("MLP0"), std::runtime_error);
}

TEST(Robustness, BinaryReaderRejectsImplausibleSizes) {
  std::stringstream stream;
  util::BinaryWriter writer(stream);
  writer.u64(1ull << 40);  // claims a 2^40-entry vector
  util::BinaryReader reader(stream);
  EXPECT_THROW(reader.f64_vector(), std::runtime_error);
}

// ---------- end-to-end resilience ----------

TEST(Robustness, PipelineRunsOnHeavilyObfuscatedData) {
  data::SyntheticWorldConfig world_cfg;
  world_cfg.user_count = 100;
  world_cfg.poi_count = 260;
  world_cfg.city_count = 3;
  world_cfg.weeks = 5;
  world_cfg.seed = 9;
  const auto world = data::generate_world(world_cfg);
  util::Rng rng(4);
  const geo::QuadtreeDivision division(world.dataset.poi_coordinates(), 50);
  // 50 % hiding followed by 50 % cross-grid blurring: the worst case the
  // evaluation exercises, compounded.
  data::Dataset mangled = data::hide_checkins(world.dataset, 0.5, rng);
  mangled = data::blur_cross_grid(mangled, 0.5, division, rng);

  const eval::LabeledPairs pairs = eval::sample_candidate_pairs(mangled);
  const eval::PairSplit split = eval::split_pairs(pairs, 0.7, 5);
  core::FriendSeekerConfig cfg;
  cfg.sigma = 50;
  cfg.presence.feature_dim = 12;
  cfg.presence.epochs = 4;
  cfg.presence.max_autoencoder_rows = 150;
  cfg.max_iterations = 2;
  core::FriendSeeker seeker(cfg);
  const auto result = seeker.run(mangled, split.train_pairs,
                                 split.train_labels, split.test_pairs);
  EXPECT_EQ(result.test_predictions.size(), split.test_pairs.size());
  // Even mangled, the social structure keeps the attack above chance.
  const ml::Prf prf = ml::prf(split.test_labels, result.test_predictions);
  EXPECT_GT(prf.f1, 0.3);
}

}  // namespace
}  // namespace fs
