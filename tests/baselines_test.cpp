#include <gtest/gtest.h>

#include "baselines/colocation.h"
#include "baselines/distance.h"
#include "baselines/usergraph.h"
#include "baselines/walk2friends.h"
#include "data/synthetic.h"
#include "eval/pairs.h"
#include "ml/metrics.h"

namespace fs::baselines {
namespace {

struct BaselineFixture {
  static data::SyntheticWorldConfig world_config() {
    data::SyntheticWorldConfig cfg;
    cfg.user_count = 130;
    cfg.poi_count = 320;
    cfg.city_count = 3;
    cfg.weeks = 6;
    cfg.seed = 91;
    return cfg;
  }

  data::SyntheticWorld world = data::generate_world(world_config());
  eval::LabeledPairs pairs =
      eval::sample_candidate_pairs(world.dataset, eval::PairSamplingConfig{});
  eval::PairSplit split = eval::split_pairs(pairs, 0.7, 13);

  ml::Prf run(FriendshipAttack& attack) const {
    const auto pred =
        attack.infer(world.dataset, split.train_pairs, split.train_labels,
                     split.test_pairs);
    return ml::prf(split.test_labels, pred);
  }
};

// ---------- shared helpers ----------

TEST(Threshold, TuneAndApply) {
  const TunedThreshold tuned =
      tune_threshold({0.0, 1.0, 2.0, 3.0}, {0, 0, 1, 1});
  EXPECT_GT(tuned.threshold, 1.0);
  EXPECT_LE(tuned.threshold, 2.0);
  EXPECT_EQ(apply_threshold({0.5, 2.5}, tuned.threshold),
            (std::vector<int>{0, 1}));
}

// ---------- co-location ----------

TEST(CoLocation, ZeroCommonLocationsNeverPredictedFriend) {
  BaselineFixture fx;
  CoLocationAttack attack;
  const auto pred =
      attack.infer(fx.world.dataset, fx.split.train_pairs,
                   fx.split.train_labels, fx.split.test_pairs);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const auto [a, b] = fx.split.test_pairs[i];
    if (fx.world.dataset.common_poi_count(a, b) == 0)
      EXPECT_EQ(pred[i], 0) << "pair without co-location predicted friend";
  }
}

TEST(CoLocation, ScoreZeroWithoutCommonPois) {
  BaselineFixture fx;
  // Find a pair with no common POIs.
  for (const auto& [a, b] : fx.split.test_pairs) {
    if (fx.world.dataset.common_poi_count(a, b) == 0) {
      EXPECT_DOUBLE_EQ(
          CoLocationAttack::pair_score(fx.world.dataset, a, b, {}), 0.0);
      return;
    }
  }
  FAIL() << "fixture has no zero-co-location pair";
}

TEST(CoLocation, ScoreIncreasesWithSharedRarePois) {
  BaselineFixture fx;
  double best_multi = 0.0;
  bool found_multi = false, found_single = false;
  double some_single = 0.0;
  for (const auto& [a, b] : fx.split.test_pairs) {
    const std::size_t common = fx.world.dataset.common_poi_count(a, b);
    const double score =
        CoLocationAttack::pair_score(fx.world.dataset, a, b, {});
    if (common >= 3 && !found_multi) {
      best_multi = score;
      found_multi = true;
    } else if (common == 1 && !found_single) {
      some_single = score;
      found_single = true;
    }
  }
  if (found_multi && found_single) EXPECT_GT(best_multi, 0.0);
  if (found_single) EXPECT_GT(some_single, 0.0);
}

TEST(CoLocation, BeatsChanceOnSyntheticWorld) {
  BaselineFixture fx;
  CoLocationAttack attack;
  EXPECT_GT(fx.run(attack).f1, 0.4);
}

// ---------- distance ----------

TEST(Distance, CenterLocationIsCentroid) {
  std::vector<data::Poi> pois{{{0.0, 0.0}, 0}, {{2.0, 4.0}, 0}};
  std::vector<data::CheckIn> checkins{
      {0, 0, 0, {0.0, 0.0}}, {0, 1, 1, {2.0, 4.0}}};
  graph::Graph g(1);
  const auto ds =
      data::Dataset::build(1, std::move(pois), std::move(checkins), g);
  const geo::LatLng center = DistanceAttack::center_location(ds, 0);
  EXPECT_DOUBLE_EQ(center.lat, 1.0);
  EXPECT_DOUBLE_EQ(center.lng, 2.0);
}

TEST(Distance, RunsAboveChance) {
  BaselineFixture fx;
  DistanceAttack attack;
  // Distance alone is a weak signal; it should still beat random guessing
  // on same-city-dominated real friendships.
  EXPECT_GT(fx.run(attack).f1, 0.3);
}

// ---------- walk2friends ----------

TEST(Walk2Friends, BipartiteGraphShape) {
  BaselineFixture fx;
  const auto g = Walk2FriendsAttack::build_bipartite(fx.world.dataset);
  EXPECT_EQ(g.node_count(),
            fx.world.dataset.user_count() + fx.world.dataset.poi_count());
  // Users only connect to POIs (ids >= user_count).
  for (embed::VocabId u = 0; u < fx.world.dataset.user_count(); ++u)
    for (const auto& n : g.neighbors(u))
      EXPECT_GE(n.node, fx.world.dataset.user_count());
}

TEST(Walk2Friends, BeatsChance) {
  BaselineFixture fx;
  Walk2FriendsAttack attack;
  EXPECT_GT(fx.run(attack).f1, 0.5);
}

// ---------- user-graph embedding ----------

TEST(UserGraph, MeetingGraphOnlyConnectsCoOccurringUsers) {
  BaselineFixture fx;
  UserGraphConfig cfg;
  const auto g =
      UserGraphAttack::build_meeting_graph(fx.world.dataset, cfg);
  EXPECT_EQ(g.node_count(), fx.world.dataset.user_count());
  // Every meeting edge implies at least one common POI.
  for (embed::VocabId u = 0; u < g.node_count(); ++u)
    for (const auto& n : g.neighbors(u)) {
      if (u < n.node)
        EXPECT_GT(fx.world.dataset.common_poi_count(u, n.node), 0u);
    }
}

TEST(UserGraph, MeetingWindowControlsEdges) {
  // Two users at the same POI 10 hours apart: a 1-hour window finds no
  // meeting, a 24-hour window does.
  std::vector<data::Poi> pois{{{0.0, 0.0}, 0}};
  std::vector<data::CheckIn> checkins{
      {0, 0, 0, {0.0, 0.0}}, {1, 0, 10 * 3600, {0.0, 0.0}}};
  graph::Graph g(2);
  const auto ds =
      data::Dataset::build(2, std::move(pois), std::move(checkins), g);
  UserGraphConfig narrow;
  narrow.meeting_window = 3600;
  EXPECT_EQ(UserGraphAttack::build_meeting_graph(ds, narrow).degree(0), 0u);
  UserGraphConfig wide;
  wide.meeting_window = 24 * 3600;
  EXPECT_EQ(UserGraphAttack::build_meeting_graph(ds, wide).degree(0), 1u);
}

TEST(UserGraph, CategoryWeightsScaleEdges) {
  std::vector<data::Poi> pois{{{0.0, 0.0}, 2}};  // category 2
  std::vector<data::CheckIn> checkins{
      {0, 0, 0, {0.0, 0.0}}, {1, 0, 100, {0.0, 0.0}}};
  graph::Graph g(2);
  const auto ds =
      data::Dataset::build(2, std::move(pois), std::move(checkins), g);
  UserGraphConfig weighted;
  weighted.category_weight = {1.0, 1.0, 5.0};
  UserGraphConfig plain;
  const auto gw = UserGraphAttack::build_meeting_graph(ds, weighted);
  const auto gp = UserGraphAttack::build_meeting_graph(ds, plain);
  ASSERT_EQ(gw.degree(0), 1u);
  ASSERT_EQ(gp.degree(0), 1u);
  EXPECT_NEAR(gw.neighbors(0)[0].weight, 5.0 * gp.neighbors(0)[0].weight,
              1e-9);
}

TEST(UserGraph, BeatsChance) {
  BaselineFixture fx;
  UserGraphAttack attack;
  EXPECT_GT(fx.run(attack).f1, 0.4);
}

// ---------- cross-baseline sanity ----------

TEST(AllBaselines, ProduceOnePredictionPerTestPair) {
  BaselineFixture fx;
  CoLocationAttack colocation;
  DistanceAttack distance;
  Walk2FriendsAttack walk2friends;
  UserGraphAttack usergraph;
  FriendshipAttack* attacks[] = {&colocation, &distance, &walk2friends,
                                 &usergraph};
  for (FriendshipAttack* attack : attacks) {
    const auto pred =
        attack->infer(fx.world.dataset, fx.split.train_pairs,
                      fx.split.train_labels, fx.split.test_pairs);
    EXPECT_EQ(pred.size(), fx.split.test_pairs.size()) << attack->name();
    for (int p : pred) EXPECT_TRUE(p == 0 || p == 1);
  }
}

}  // namespace
}  // namespace fs::baselines
