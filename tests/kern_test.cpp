#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kern/kern.h"
#include "par/pool.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace fs::kern {
namespace {

// Naive reference GEMM over the logical operands (no blocking, no
// vectorization): the oracle every dispatched path must match.
struct Shape {
  std::size_t m, n, k;
};

double ref_a(const GemmCall& call, std::size_t i, std::size_t p) {
  return call.a_trans ? call.a[p * call.lda + i] : call.a[i * call.lda + p];
}

double ref_b(const GemmCall& call, std::size_t p, std::size_t j) {
  return call.b_trans ? call.b[j * call.ldb + p] : call.b[p * call.ldb + j];
}

double ref_epilogue(Epilogue epilogue, double v, double bias) {
  switch (epilogue) {
    case Epilogue::kNone:
      return v;
    case Epilogue::kBias:
      return v + bias;
    case Epilogue::kBiasRelu:
      v += bias;
      return v > 0.0 ? v : 0.0;
    case Epilogue::kBiasSigmoid:
      v += bias;
      return 1.0 / (1.0 + std::exp(-v));
    case Epilogue::kBiasTanh:
      v += bias;
      return std::tanh(v);
  }
  return v;
}

std::vector<double> reference_gemm(const GemmCall& call,
                                   const std::vector<double>& c_in) {
  std::vector<double> c = c_in;
  for (std::size_t i = 0; i < call.m; ++i)
    for (std::size_t j = 0; j < call.n; ++j) {
      double acc = call.accumulate ? c[i * call.ldc + j] : 0.0;
      for (std::size_t p = 0; p < call.k; ++p)
        acc += ref_a(call, i, p) * ref_b(call, p, j);
      if (call.epilogue != Epilogue::kNone)
        acc = ref_epilogue(call.epilogue, acc, call.bias[j]);
      c[i * call.ldc + j] = acc;
    }
  return c;
}

// Pins a path for the duration of one test body and restores auto/default
// afterwards (other suites in this binary must see the default dispatch).
class PathGuard {
 public:
  explicit PathGuard(IsaPath path) : previous_(active_path()) {
    force_path(path);
  }
  ~PathGuard() { force_path(previous_); }

 private:
  IsaPath previous_;
};

std::vector<double> random_values(std::size_t count, util::Rng& rng) {
  std::vector<double> values(count);
  for (double& v : values) v = rng.normal(0.0, 1.0);
  return values;
}

// Shapes chosen to cross every blocking edge: 1x1, exact register tiles,
// non-multiples of MR/NR, tall-skinny, wide-flat, and dims straddling the
// KC=256 / MC=96 / NC=512 block boundaries.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {4, 4, 4},    {8, 8, 8},    {5, 3, 9},
    {7, 13, 11},  {300, 2, 7},  {2, 300, 5},  {97, 65, 33}, {64, 48, 257},
    {100, 513, 3}, {17, 9, 300},
};

struct Variant {
  const char* name;
  bool a_trans;
  bool b_trans;
};

const Variant kVariants[] = {
    {"nn", false, false}, {"nt", false, true}, {"tn", true, false}};

GemmCall build_call(const Shape& shape, const Variant& variant,
                    const std::vector<double>& a, const std::vector<double>& b,
                    std::vector<double>& c, bool accumulate,
                    Epilogue epilogue = Epilogue::kNone,
                    const double* bias = nullptr) {
  GemmCall call;
  call.m = shape.m;
  call.n = shape.n;
  call.k = shape.k;
  call.a = a.data();
  call.a_trans = variant.a_trans;
  call.lda = variant.a_trans ? shape.m : shape.k;
  call.b = b.data();
  call.b_trans = variant.b_trans;
  call.ldb = variant.b_trans ? shape.k : shape.n;
  call.c = c.data();
  call.ldc = shape.n;
  call.accumulate = accumulate;
  call.epilogue = epilogue;
  call.bias = bias;
  return call;
}

TEST(KernDispatch, ScalarAlwaysSupportedAndForceable) {
  EXPECT_TRUE(path_supported(IsaPath::kScalar));
  const auto paths = supported_paths();
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), IsaPath::kScalar);
  for (IsaPath path : paths) {
    PathGuard guard(path);
    EXPECT_EQ(active_path(), path);
  }
}

TEST(KernDispatch, PathNamesRoundTrip) {
  EXPECT_STREQ(path_name(IsaPath::kScalar), "scalar");
  EXPECT_STREQ(path_name(IsaPath::kAvx2), "avx2");
  EXPECT_STREQ(path_name(IsaPath::kAvx512), "avx512");
}

TEST(KernGemm, EveryPathMatchesNaiveReferenceOnEdgeShapes) {
  util::Rng rng(20260809);
  for (const Shape& shape : kShapes) {
    const std::vector<double> a = random_values(shape.m * shape.k, rng);
    const std::vector<double> b = random_values(shape.k * shape.n, rng);
    const std::vector<double> c0 = random_values(shape.m * shape.n, rng);
    for (const Variant& variant : kVariants) {
      for (bool accumulate : {false, true}) {
        std::vector<double> c_ref = c0;
        const GemmCall probe =
            build_call(shape, variant, a, b, c_ref, accumulate);
        const std::vector<double> expected = reference_gemm(probe, c0);
        for (IsaPath path : supported_paths()) {
          PathGuard guard(path);
          std::vector<double> c = c0;
          gemm(build_call(shape, variant, a, b, c, accumulate));
          for (std::size_t v = 0; v < c.size(); ++v)
            EXPECT_NEAR(c[v], expected[v],
                        1e-12 * (1.0 + std::fabs(expected[v])))
                << path_name(path) << " " << variant.name << " m=" << shape.m
                << " n=" << shape.n << " k=" << shape.k << " acc="
                << accumulate << " elem=" << v;
        }
      }
    }
  }
}

TEST(KernGemm, IntegerInputsAreBitExactAcrossAllPaths) {
  // Small-integer products and sums are exactly representable, so every
  // path — whatever its accumulation tree or FMA usage — must agree to
  // the last bit. This pins blocking/pack bookkeeping, not rounding.
  util::Rng rng(7);
  for (const Shape& shape : {Shape{13, 21, 300}, Shape{97, 9, 130}}) {
    std::vector<double> a(shape.m * shape.k), b(shape.k * shape.n);
    for (double& v : a) v = static_cast<double>(rng.range(-8, 8));
    for (double& v : b) v = static_cast<double>(rng.range(-8, 8));
    for (const Variant& variant : kVariants) {
      std::vector<double> c_scalar(shape.m * shape.n, 0.0);
      {
        PathGuard guard(IsaPath::kScalar);
        gemm(build_call(shape, variant, a, b, c_scalar, false));
      }
      for (IsaPath path : supported_paths()) {
        PathGuard guard(path);
        std::vector<double> c(shape.m * shape.n, 0.0);
        gemm(build_call(shape, variant, a, b, c, false));
        EXPECT_EQ(0, std::memcmp(c.data(), c_scalar.data(),
                                 c.size() * sizeof(double)))
            << path_name(path) << " " << variant.name;
      }
    }
  }
}

TEST(KernGemm, FusedEpilogueMatchesUnfusedTwoPass) {
  util::Rng rng(99);
  const Shape shape{37, 29, 111};
  const std::vector<double> a = random_values(shape.m * shape.k, rng);
  const std::vector<double> b = random_values(shape.k * shape.n, rng);
  const std::vector<double> bias = random_values(shape.n, rng);
  for (IsaPath path : supported_paths()) {
    PathGuard guard(path);
    for (Epilogue epilogue : {Epilogue::kBias, Epilogue::kBiasRelu,
                              Epilogue::kBiasSigmoid, Epilogue::kBiasTanh}) {
      std::vector<double> fused(shape.m * shape.n, 0.0);
      gemm(build_call(shape, kVariants[0], a, b, fused, false, epilogue,
                      bias.data()));
      // Unfused: same path, no epilogue, then the identical scalar sweep.
      std::vector<double> two_pass(shape.m * shape.n, 0.0);
      gemm(build_call(shape, kVariants[0], a, b, two_pass, false));
      for (std::size_t i = 0; i < shape.m; ++i)
        for (std::size_t j = 0; j < shape.n; ++j) {
          double& v = two_pass[i * shape.n + j];
          v = ref_epilogue(epilogue, v, bias[j]);
        }
      // The fused epilogue applies the same double-precision operations in
      // the same order, so the results are bit-identical.
      EXPECT_EQ(0, std::memcmp(fused.data(), two_pass.data(),
                               fused.size() * sizeof(double)))
          << path_name(path) << " epilogue=" << static_cast<int>(epilogue);
    }
  }
}

TEST(KernGemm, KZeroDegeneratesToEpilogueSweep) {
  for (IsaPath path : supported_paths()) {
    PathGuard guard(path);
    const std::vector<double> bias = {1.0, -2.0, 0.5};
    std::vector<double> c = {5.0, 5.0, 5.0, -1.0, -1.0, -1.0};
    gemm_nn(2, 3, 0, nullptr, 0, nullptr, 0, c.data(), 3,
            /*accumulate=*/false, Epilogue::kBiasRelu, bias.data());
    EXPECT_DOUBLE_EQ(c[0], 1.0);  // relu(0 + 1)
    EXPECT_DOUBLE_EQ(c[1], 0.0);  // relu(0 - 2)
    EXPECT_DOUBLE_EQ(c[2], 0.5);
    std::vector<double> d = {5.0, 5.0};
    gemm_nn(1, 2, 0, nullptr, 0, nullptr, 0, d.data(), 2,
            /*accumulate=*/true);
    EXPECT_DOUBLE_EQ(d[0], 5.0);  // accumulate keeps C
  }
}

TEST(KernGemm, ThreadCountNeverChangesTheBits) {
  util::Rng rng(4242);
  const Shape shape{300, 140, 96};  // several MC blocks -> real parallelism
  const std::vector<double> a = random_values(shape.m * shape.k, rng);
  const std::vector<double> b = random_values(shape.k * shape.n, rng);
  for (IsaPath path : supported_paths()) {
    PathGuard guard(path);
    std::vector<double> c1(shape.m * shape.n, 0.0);
    par::set_threads(1);
    gemm(build_call(shape, kVariants[1], a, b, c1, false));
    for (std::size_t threads : {2u, 5u}) {
      par::set_threads(threads);
      std::vector<double> cn(shape.m * shape.n, 0.0);
      gemm(build_call(shape, kVariants[1], a, b, cn, false));
      EXPECT_EQ(0, std::memcmp(c1.data(), cn.data(),
                               c1.size() * sizeof(double)))
          << path_name(path) << " threads=" << threads;
    }
    par::set_threads(1);
  }
}

TEST(KernGemm, RejectsMalformedCalls) {
  std::vector<double> a(4), b(4), c(4);
  EXPECT_THROW(gemm_nn(2, 2, 2, nullptr, 2, b.data(), 2, c.data(), 2),
               std::invalid_argument);
  EXPECT_THROW(gemm_nn(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 1),
               std::invalid_argument);
  EXPECT_THROW(gemm_nn(2, 2, 2, a.data(), 2, b.data(), 2, c.data(), 2,
                       false, Epilogue::kBias, nullptr),
               std::invalid_argument);
}

// ---------- quantized KNN lower bounds ----------

struct QuantizedSet {
  std::vector<std::uint8_t> codes;
  std::vector<float> scale, offset, half_scale;
  std::vector<double> raw;  // n x dim, full precision
};

QuantizedSet quantize_rows(std::size_t n, std::size_t dim, util::Rng& rng) {
  QuantizedSet set;
  set.raw = random_values(n * dim, rng);
  set.codes.resize(n * dim);
  set.scale.resize(dim);
  set.offset.resize(dim);
  set.half_scale.resize(dim);
  for (std::size_t c = 0; c < dim; ++c) {
    double lo = set.raw[c], hi = set.raw[c];
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, set.raw[i * dim + c]);
      hi = std::max(hi, set.raw[i * dim + c]);
    }
    const double scale = hi > lo ? (hi - lo) / 255.0 : 0.0;
    set.offset[c] = static_cast<float>(lo);
    set.scale[c] = static_cast<float>(scale);
    set.half_scale[c] = static_cast<float>(scale * 0.5);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = set.raw[i * dim + c];
      const long code =
          scale > 0.0 ? std::lround((v - lo) / scale) : 0;
      set.codes[i * dim + c] =
          static_cast<std::uint8_t>(std::clamp(code, 0l, 255l));
    }
  }
  return set;
}

TEST(KernKnnLb, BoundIsAdmissibleAndPathsAgree) {
  util::Rng rng(555);
  for (std::size_t dim : {1u, 3u, 8u, 16u, 19u, 48u}) {
    const std::size_t n = 64;
    const QuantizedSet set = quantize_rows(n, dim, rng);
    const std::vector<double> query_d = random_values(dim, rng);
    std::vector<float> query(dim);
    for (std::size_t c = 0; c < dim; ++c)
      query[c] = static_cast<float>(query_d[c]);

    std::vector<float> lb_scalar(n);
    {
      PathGuard guard(IsaPath::kScalar);
      knn_lower_bounds(set.codes.data(), n, dim, query.data(),
                       set.scale.data(), set.offset.data(),
                       set.half_scale.data(), lb_scalar.data());
    }
    for (std::size_t i = 0; i < n; ++i) {
      double exact = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        const double d = query_d[c] - set.raw[i * dim + c];
        exact += d * d;
      }
      // Admissible modulo f32 rounding: the engine prunes with a relative
      // slack, so the bound must not exceed the true distance by more
      // than that slack.
      EXPECT_LE(static_cast<double>(lb_scalar[i]), exact * (1.0 + 1e-3))
          << "dim=" << dim << " row=" << i;
    }
    for (IsaPath path : supported_paths()) {
      PathGuard guard(path);
      std::vector<float> lb(n);
      knn_lower_bounds(set.codes.data(), n, dim, query.data(),
                       set.scale.data(), set.offset.data(),
                       set.half_scale.data(), lb.data());
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(lb[i], lb_scalar[i], 1e-4f * (1.0f + lb_scalar[i]))
            << path_name(path) << " dim=" << dim << " row=" << i;
    }
  }
}

TEST(KernAligned, PackScratchAndAllocatorAre64ByteAligned) {
  std::vector<double, util::AlignedAllocator<double>> v(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  std::vector<float, util::AlignedAllocator<float>> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u);
}

}  // namespace
}  // namespace fs::kern
