// Obfuscation defense demo: how well do the common countermeasures —
// hiding, in-grid blurring, cross-grid blurring — protect friendship
// privacy against FriendSeeker? (Paper Section IV-D at demo scale.)
//
//   ./build/examples/obfuscation_defense [ratio]   (default 0.3)
#include <cstdio>
#include <cstdlib>

#include "data/obfuscation.h"
#include "eval/harness.h"
#include "geo/quadtree.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  fs::util::set_log_level(fs::util::LogLevel::kWarn);
  const double ratio = argc > 1 ? std::atof(argv[1]) : 0.3;
  if (ratio < 0.0 || ratio > 1.0) {
    std::fprintf(stderr, "usage: %s [ratio in 0..1]\n", argv[0]);
    return 1;
  }

  fs::data::SyntheticWorldConfig world_cfg = fs::data::gowalla_like();
  world_cfg.user_count = 320;
  world_cfg.poi_count = 900;
  const fs::eval::Experiment clean = fs::eval::make_experiment(world_cfg);

  fs::core::FriendSeekerConfig seeker_cfg = fs::eval::default_seeker_config();
  seeker_cfg.sigma = 120;
  seeker_cfg.presence.feature_dim = 48;
  seeker_cfg.presence.epochs = 10;

  auto attack_f1 = [&](const fs::eval::Experiment& experiment) {
    fs::eval::FriendSeekerAttack attack(seeker_cfg);
    return fs::eval::run_attack(attack, experiment).f1;
  };

  std::printf("obfuscation ratio: %.0f%%\n\n", ratio * 100);
  const double baseline_f1 = attack_f1(clean);
  std::printf("%-22s F1 = %.3f\n", "no defense", baseline_f1);

  const fs::geo::QuadtreeDivision division(clean.dataset.poi_coordinates(),
                                           120);
  struct Defense {
    const char* label;
    fs::data::Dataset dataset;
  };
  fs::util::Rng rng(2024);
  const Defense defenses[] = {
      {"hiding", fs::data::hide_checkins(clean.dataset, ratio, rng)},
      {"in-grid blurring",
       fs::data::blur_in_grid(clean.dataset, ratio, division, rng)},
      {"cross-grid blurring",
       fs::data::blur_cross_grid(clean.dataset, ratio, division, rng)},
  };
  for (const Defense& defense : defenses) {
    fs::eval::Experiment perturbed;
    perturbed.dataset = defense.dataset;
    perturbed.split = clean.split;
    perturbed.name = defense.label;
    const double f1 = attack_f1(perturbed);
    std::printf("%-22s F1 = %.3f  (%.1f%% of undefended)\n", defense.label,
                f1, 100.0 * f1 / baseline_f1);
  }

  std::printf(
      "\nconclusion (matches the paper): none of the common obfuscation\n"
      "mechanisms reduces FriendSeeker below useful accuracy at "
      "moderate\nratios — friendship leaks through social structure even "
      "when\nmobility is perturbed.\n");
  return 0;
}
