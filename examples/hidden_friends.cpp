// Hidden-friends demo: the scenario from the paper's introduction. Cyber
// friends are geographically distant strangers — no co-locations, no
// mobility overlap — yet FriendSeeker reveals them through the social
// structure reconstructed in phase 2.
//
//   ./build/examples/hidden_friends
#include <cstdio>

#include "baselines/colocation.h"
#include "baselines/walk2friends.h"
#include "eval/harness.h"
#include "util/logging.h"

int main() {
  fs::util::set_log_level(fs::util::LogLevel::kWarn);

  fs::data::SyntheticWorldConfig world_cfg = fs::data::gowalla_like();
  const fs::data::SyntheticWorld world = fs::data::generate_world(world_cfg);
  fs::eval::Experiment experiment = fs::eval::make_experiment(
      world.dataset, world_cfg.name, fs::eval::PairSamplingConfig{});

  // Run FriendSeeker and two baselines, then stratify recall over the
  // ground-truth edge types only the generator knows.
  fs::eval::FriendSeekerAttack seeker(fs::eval::default_seeker_config());
  fs::baselines::CoLocationAttack colocation;
  fs::baselines::Walk2FriendsAttack walk2friends;

  struct Row {
    const char* label;
    std::vector<int> predictions;
  };
  std::vector<Row> rows;
  for (auto* attack : std::initializer_list<fs::baselines::FriendshipAttack*>{
           &seeker, &colocation, &walk2friends}) {
    rows.push_back({attack->name().c_str(),
                    attack->infer(experiment.dataset,
                                  experiment.split.train_pairs,
                                  experiment.split.train_labels,
                                  experiment.split.test_pairs)});
  }

  std::printf("\nrecall by ground-truth friendship type (test split)\n");
  std::printf("%-22s %14s %14s %20s\n", "attack", "real-world",
              "cyber (hidden)", "no-common-location");
  for (const Row& row : rows) {
    std::size_t real_total = 0, real_found = 0;
    std::size_t cyber_total = 0, cyber_found = 0;
    std::size_t nocoloc_total = 0, nocoloc_found = 0;
    for (std::size_t i = 0; i < experiment.split.test_pairs.size(); ++i) {
      if (!experiment.split.test_labels[i]) continue;
      const auto [a, b] = experiment.split.test_pairs[i];
      const bool found = row.predictions[i] != 0;
      if (world.is_cyber_edge(a, b)) {
        ++cyber_total;
        cyber_found += found;
      } else {
        ++real_total;
        real_found += found;
      }
      if (experiment.dataset.common_poi_count(a, b) == 0) {
        ++nocoloc_total;
        nocoloc_found += found;
      }
    }
    auto pct = [](std::size_t found, std::size_t total) {
      return total ? 100.0 * static_cast<double>(found) /
                         static_cast<double>(total)
                   : 0.0;
    };
    std::printf("%-22s %13.1f%% %13.1f%% %19.1f%%\n", row.label,
                pct(real_found, real_total), pct(cyber_found, cyber_total),
                pct(nocoloc_found, nocoloc_total));
  }

  std::printf(
      "\nthe knowledge-based attack cannot touch hidden friends (0%% by\n"
      "construction); mobility embeddings see little; FriendSeeker's\n"
      "k-hop social features recover a large share of them.\n");
  return 0;
}
