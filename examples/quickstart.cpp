// Quickstart: generate a synthetic MSN world, run the FriendSeeker attack,
// and compare it against the strongest baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "baselines/walk2friends.h"
#include "eval/harness.h"
#include "util/logging.h"

int main() {
  fs::util::set_log_level(fs::util::LogLevel::kInfo);

  // 1. A Gowalla-like synthetic world: clustered POIs, small-world social
  //    graph with real-world and cyber friendships, sparse check-ins.
  fs::data::SyntheticWorldConfig world = fs::data::gowalla_like();
  fs::eval::Experiment experiment = fs::eval::make_experiment(world);
  std::printf("dataset: %zu users, %zu POIs, %zu check-ins, %zu links\n",
              experiment.dataset.user_count(), experiment.dataset.poi_count(),
              experiment.dataset.checkin_count(),
              experiment.dataset.friendships().edge_count());
  std::printf("pairs: %zu train / %zu test\n",
              experiment.split.train_pairs.size(),
              experiment.split.test_pairs.size());

  // 2. FriendSeeker with paper-default hyperparameters (tau = 7 days,
  //    k = 3, d = 64).
  fs::eval::FriendSeekerAttack seeker(fs::eval::default_seeker_config());
  const fs::ml::Prf ours = fs::eval::run_attack(seeker, experiment);
  std::printf("\nFriendSeeker   F1=%.3f  precision=%.3f  recall=%.3f "
              "(%d iterations, converged=%s)\n",
              ours.f1, ours.precision, ours.recall,
              seeker.last_result().iterations_run,
              seeker.last_result().converged ? "yes" : "no");

  // 3. The strongest learning-based baseline for comparison.
  fs::baselines::Walk2FriendsAttack walk2friends;
  const fs::ml::Prf theirs = fs::eval::run_attack(walk2friends, experiment);
  std::printf("walk2friends   F1=%.3f  precision=%.3f  recall=%.3f\n",
              theirs.f1, theirs.precision, theirs.recall);

  std::printf("\nFriendSeeker wins by %.1f%% relative F1\n",
              theirs.f1 > 0 ? (ours.f1 / theirs.f1 - 1.0) * 100.0 : 100.0);
  return 0;
}
