// Pipeline inspector: runs FriendSeeker step by step on a synthetic world
// and prints the internal signals the attack relies on — dataset census,
// phase-1 quality, and per-iteration refinement progress (the view behind
// the paper's Fig 10).
//
//   ./build/examples/pipeline_inspector [gowalla|brightkite]
#include <cstdio>
#include <cstring>

#include "data/stats.h"
#include "eval/harness.h"
#include "graph/metrics.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  fs::util::set_log_level(fs::util::LogLevel::kDebug);
  const bool brightkite = argc > 1 && std::strcmp(argv[1], "brightkite") == 0;
  const fs::data::SyntheticWorldConfig world_cfg =
      brightkite ? fs::data::brightkite_like() : fs::data::gowalla_like();

  fs::eval::Experiment ex = fs::eval::make_experiment(world_cfg);
  const fs::data::Dataset& ds = ex.dataset;

  // ---- Dataset census (Table I / II flavor). ----
  const fs::data::DatasetStats stats = fs::data::dataset_stats(ds);
  std::printf("world %s: users=%zu pois=%zu checkins=%zu (%.1f/user) "
              "links=%zu\n",
              ex.name.c_str(), stats.users, stats.pois, stats.checkins,
              stats.mean_checkins_per_user, stats.links);
  const auto deg = fs::graph::degree_stats(ds.friendships());
  std::printf("graph: mean degree=%.2f clustering=%.3f\n", deg.mean,
              fs::graph::average_clustering(ds.friendships()));

  std::vector<fs::data::UserPair> friend_pairs, nonfriend_pairs;
  for (std::size_t i = 0; i < ex.split.test_pairs.size(); ++i)
    (ex.split.test_labels[i] ? friend_pairs : nonfriend_pairs)
        .push_back(ex.split.test_pairs[i]);
  const auto census =
      fs::data::co_presence_census(ds, friend_pairs, nonfriend_pairs);
  std::printf("friends:     co-loc&co-friend=%.1f%%  co-loc only=%.1f%%  "
              "co-friend only=%.1f%%  neither=%.1f%%\n",
              census.friends[1][1] * 100, census.friends[1][0] * 100,
              census.friends[0][1] * 100, census.friends[0][0] * 100);
  std::printf("non-friends: co-loc&co-friend=%.1f%%  co-loc only=%.1f%%  "
              "co-friend only=%.1f%%  neither=%.1f%%\n",
              census.non_friends[1][1] * 100, census.non_friends[1][0] * 100,
              census.non_friends[0][1] * 100,
              census.non_friends[0][0] * 100);

  // ---- FriendSeeker with per-iteration test F1. ----
  fs::eval::FriendSeekerAttack seeker(fs::eval::default_seeker_config());
  const fs::ml::Prf prf = fs::eval::run_attack(seeker, ex);
  std::printf("\niter  F1      precision  recall   edges   change\n");
  for (const auto& it : seeker.last_result().iterations) {
    const fs::ml::Prf ip =
        fs::ml::prf(ex.split.test_labels, it.test_predictions);
    std::printf("%4d  %.4f  %.4f     %.4f   %5zu   %.4f\n", it.iteration,
                ip.f1, ip.precision, ip.recall, it.graph_edges,
                it.edge_change_ratio);
  }
  std::printf("\nfinal: F1=%.4f P=%.4f R=%.4f converged=%s\n", prf.f1,
              prf.precision, prf.recall,
              seeker.last_result().converged ? "yes" : "no");
  return 0;
}
