// SNAP-format pipeline: run the attack on an on-disk dataset in the exact
// Gowalla/Brightkite SNAP layout. Without arguments, the example exports a
// synthetic world to SNAP files, reloads it, and attacks the reloaded copy
// — demonstrating the full external-data path. With arguments, it attacks
// your files:
//
//   ./build/examples/snap_pipeline [checkins.txt edges.txt]
//
// File formats (tab/space separated):
//   checkins: <user-ID> <ISO-8601 time> <lat> <lng> <location-ID>
//   edges:    <user-ID> <user-ID>
#include <cstdio>
#include <filesystem>

#include "data/loader.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  fs::util::set_log_level(fs::util::LogLevel::kInfo);

  std::string checkins_path, edges_path;
  if (argc >= 3) {
    checkins_path = argv[1];
    edges_path = argv[2];
  } else {
    // Export a synthetic world in SNAP format, then treat it as external.
    const std::string dir = "snap_demo";
    std::filesystem::create_directories(dir);
    checkins_path = dir + "/checkins.txt";
    edges_path = dir + "/edges.txt";
    fs::data::SyntheticWorldConfig cfg = fs::data::gowalla_like();
    cfg.user_count = 300;
    cfg.poi_count = 800;
    const fs::data::SyntheticWorld world = fs::data::generate_world(cfg);
    fs::data::save_checkins_snap(world.dataset, checkins_path, edges_path);
    std::printf("exported synthetic world to %s + %s\n",
                checkins_path.c_str(), edges_path.c_str());
  }

  fs::data::LoadOptions options;
  options.min_checkins = 2;  // the paper's activity floor
  const fs::data::Dataset dataset =
      fs::data::load_checkins_snap(checkins_path, edges_path, options);
  std::printf("loaded: %zu users, %zu POIs, %zu check-ins, %zu links\n",
              dataset.user_count(), dataset.poi_count(),
              dataset.checkin_count(), dataset.friendships().edge_count());

  fs::eval::Experiment experiment =
      fs::eval::make_experiment(dataset, "snap-data");
  fs::core::FriendSeekerConfig cfg = fs::eval::default_seeker_config();
  cfg.sigma = std::max<std::size_t>(40, dataset.poi_count() / 8);
  fs::eval::FriendSeekerAttack attack(cfg);
  const fs::ml::Prf prf = fs::eval::run_attack(attack, experiment);
  std::printf("\nFriendSeeker on %s: F1=%.3f precision=%.3f recall=%.3f\n",
              checkins_path.c_str(), prf.f1, prf.precision, prf.recall);
  std::printf("(point this at the real SNAP Gowalla/Brightkite dumps to "
              "reproduce at paper scale)\n");
  return 0;
}
